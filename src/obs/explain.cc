#include "obs/explain.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace oodb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Edges of `g` in deterministic order: nodes in insertion order,
/// successors sorted ascending (the order Digraph::ToString renders).
std::vector<std::pair<uint64_t, uint64_t>> OrderedEdges(const Digraph& g) {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  edges.reserve(g.EdgeCount());
  for (Digraph::NodeId n : g.Nodes()) {
    std::vector<Digraph::NodeId> succ(g.Successors(n).begin(),
                                      g.Successors(n).end());
    std::sort(succ.begin(), succ.end());
    for (Digraph::NodeId s : succ) edges.emplace_back(n, s);
  }
  return edges;
}

/// One "[[f, t], ...]" JSON array of id pairs.
void JsonEdgeArray(const std::vector<std::pair<uint64_t, uint64_t>>& edges,
                   std::ostringstream* os) {
  *os << "[";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) *os << ",";
    *os << "[" << edges[i].first << "," << edges[i].second << "]";
  }
  *os << "]";
}

bool HasAnyEdge(const ObjectSchedule& sch) {
  return sch.txn_deps.EdgeCount() != 0 || sch.action_deps.EdgeCount() != 0 ||
         sch.added_deps.EdgeCount() != 0;
}

/// The Def 16 union: action and added dependencies of every object, in
/// schedule order — exactly the graph the optional global check walks.
Digraph UnionGraph(const std::vector<ObjectSchedule>& schedules) {
  Digraph global;
  for (const ObjectSchedule& sch : schedules) {
    global.UnionWith(sch.action_deps);
    global.UnionWith(sch.added_deps);
  }
  return global;
}

}  // namespace

Explainer::Explainer(const TransactionSystem& ts,
                     const ValidationReport& report, ExplainOptions options,
                     const Tracer* tracer)
    : ts_(ts), report_(report), options_(options) {
  if (tracer != nullptr) {
    for (const TraceSpan& span : tracer->Spans()) span_ids_.insert(span.id);
  }
}

std::string Explainer::ObjName(ObjectId o) const {
  if (!o.valid()) return "(global)";
  const ObjectRecord& rec = ts_.object(o);
  if (!rec.is_virtual) return rec.name;
  return rec.name + " (virtual of " + ts_.object(rec.original).name +
         ", Def 5)";
}

std::string Explainer::Label(ActionId a) const {
  std::string label = ts_.Describe(a);
  if (ts_.action(a).is_virtual) label += " (Def 5)";
  return label;
}

void Explainer::TextStep(const ProvenanceStep& step, std::string* out) const {
  *out += "    ";
  *out += DepRuleName(step.rule);
  *out += " @ " + ObjName(step.object) + ": ";
  switch (step.rule) {
    case DepRule::kAxiom1:
      *out += Label(step.from) + " (t=" +
              std::to_string(ts_.action(step.from).timestamp) +
              ") executed before " + Label(step.to) + " (t=" +
              std::to_string(ts_.action(step.to).timestamp) + ")";
      break;
    case DepRule::kDef10:
      *out += "txn dep " + Label(step.from) + " -> " + Label(step.to) +
              " inherited from conflicting pair " + Label(step.cause_from) +
              " -> " + Label(step.cause_to);
      break;
    case DepRule::kDef11:
      *out += "action dep " + Label(step.from) + " -> " + Label(step.to) +
              " placed from txn dep at " + ObjName(step.cause_object);
      break;
    case DepRule::kDef15:
      *out += "added dep " + Label(step.from) + " -> " + Label(step.to) +
              " recorded from txn dep at " + ObjName(step.cause_object);
      break;
  }
  *out += "\n";
}

void Explainer::TextWitness(const Witness& w, size_t index,
                            std::string* out) const {
  *out += "witness " + std::to_string(index) + ": ";
  *out += WitnessKindName(w.kind);
  if (w.kind == Witness::Kind::kConformance) {
    *out += " (Def 7)\n";
    if (w.cycle.size() == 2) {
      ActionId a = w.cycle[0], b = w.cycle[1];
      *out += "  executed out of order: " + Label(a) + " (t=" +
              std::to_string(ts_.action(a).timestamp) + ") ran after " +
              Label(b) + " (t=" + std::to_string(ts_.action(b).timestamp) +
              ")\n";
    }
    if (!w.precedence_path.empty()) {
      *out += "  required precedence path:";
      for (size_t i = 0; i < w.precedence_path.size(); ++i) {
        *out += i == 0 ? " " : " -> ";
        *out += Label(w.precedence_path[i]);
      }
      *out += "\n";
    }
    return;
  }
  if (w.object.valid()) *out += " at " + ObjName(w.object);
  *out += "\n";
  *out += "  cycle (" + std::to_string(w.edges.size()) + " edges):";
  for (size_t i = 0; i < w.cycle.size(); ++i) {
    *out += i == 0 ? " " : " -> ";
    *out += Label(w.cycle[i]);
  }
  *out += "\n";
  std::vector<uint64_t> spans;
  for (size_t i = 0; i + 1 < w.cycle.size(); ++i) {
    if (HasSpan(w.cycle[i])) spans.push_back(w.cycle[i].value);
  }
  if (!spans.empty()) {
    *out += "  trace spans:";
    for (uint64_t s : spans) *out += " " + std::to_string(s);
    *out += "\n";
  }
  for (size_t i = 0; i < w.edges.size(); ++i) {
    const Witness::Edge& e = w.edges[i];
    *out += "  edge " + std::to_string(i + 1) + " [" +
            DepRelationName(e.relation) + "]: " + Label(e.from) + " -> " +
            Label(e.to) + "\n";
    if (e.chain.empty()) {
      *out += "    (no provenance recorded)\n";
    } else {
      for (const ProvenanceStep& step : e.chain) TextStep(step, out);
    }
  }
}

std::string Explainer::Text() const {
  std::string out = "oodb-explain v1\n";
  out += "verdict: oo-serializable=";
  out += report_.oo_serializable ? "yes" : "no";
  out += " conventional=";
  out += report_.conventionally_serializable ? "yes" : "no";
  out += " conform=";
  out += report_.conform ? "yes" : "no";
  out += " globally-acyclic=";
  out += report_.globally_acyclic ? "yes" : "no";
  out += "\n";
  const DependencyStats& st = report_.stats;
  out += "stats: prim-conflicts=" + std::to_string(st.primitive_conflicts) +
         " inherited=" + std::to_string(st.inherited_txn_deps) +
         " stopped=" + std::to_string(st.stopped_inheritance) + " added=" +
         std::to_string(st.added_deps) + " unordered=" +
         std::to_string(st.unordered_conflicts) + " rounds=" +
         std::to_string(st.fixpoint_rounds) + "\n";
  const ExtensionStats& ext = report_.extension;
  out += "extension: cycles-broken=" + std::to_string(ext.cycles_broken) +
         " virtual-objects=" + std::to_string(ext.virtual_objects) +
         " virtual-actions=" + std::to_string(ext.virtual_actions) + "\n";
  out += "provenance: ";
  out += report_.provenance != nullptr
             ? std::to_string(report_.provenance->EdgeCount()) +
                   " edges recorded"
             : "not recorded";
  out += "\n";
  out += "witnesses: " + std::to_string(report_.witnesses.size()) + "\n";
  for (size_t i = 0; i < report_.witnesses.size(); ++i) {
    out += "\n";
    TextWitness(report_.witnesses[i], i + 1, &out);
  }

  auto fmt = [this](Digraph::NodeId n) { return Label(ActionId(n)); };
  if (options_.include_relations) {
    out += "\nrelations:\n";
    if (report_.schedules.empty()) {
      out += "  (not kept; validate with record_provenance)\n";
    } else {
      for (const ObjectSchedule& sch : report_.schedules) {
        if (!HasAnyEdge(sch)) continue;
        out += "  object " + ObjName(sch.object) + ":\n";
        if (sch.txn_deps.EdgeCount() != 0) {
          out += "    txn deps (Def 10): " + sch.txn_deps.ToString(fmt) + "\n";
        }
        if (sch.action_deps.EdgeCount() != 0) {
          out += "    action deps (Def 11): " + sch.action_deps.ToString(fmt) +
                 "\n";
        }
        if (sch.added_deps.EdgeCount() != 0) {
          out += "    added deps (Def 15): " + sch.added_deps.ToString(fmt) +
                 "\n";
        }
      }
    }
  }
  if (options_.include_union && !report_.schedules.empty()) {
    Digraph global = UnionGraph(report_.schedules);
    out += "\nunion (Def 16): ";
    out += global.EdgeCount() == 0 ? "(empty)" : global.ToString(fmt);
    out += "\n";
  }
  out += "\nserialization order:";
  if (report_.serialization_order.empty()) {
    out += " (none)";
  } else {
    for (size_t i = 0; i < report_.serialization_order.size(); ++i) {
      out += i == 0 ? " " : " -> ";
      out += Label(report_.serialization_order[i]);
    }
  }
  out += "\n";
  return out;
}

std::string Explainer::Dot() const {
  // Witness edges to highlight, keyed (relation, from, to).
  std::set<std::tuple<int, uint64_t, uint64_t>> hot;
  for (const Witness& w : report_.witnesses) {
    for (const Witness::Edge& e : w.edges) {
      hot.emplace(int(e.relation), e.from.value, e.to.value);
    }
  }
  struct DotEdge {
    uint64_t from, to;
    DepRelation relation;
    ObjectId object;
  };
  std::vector<DotEdge> edges;
  std::set<std::tuple<uint64_t, uint64_t, int, uint64_t>> seen;
  auto add = [&](uint64_t f, uint64_t t, DepRelation rel, ObjectId o) {
    if (seen.emplace(f, t, int(rel), o.value).second) {
      edges.push_back({f, t, rel, o});
    }
  };
  for (const ObjectSchedule& sch : report_.schedules) {
    for (auto [f, t] : OrderedEdges(sch.txn_deps)) {
      add(f, t, DepRelation::kTxn, sch.object);
    }
    for (auto [f, t] : OrderedEdges(sch.action_deps)) {
      add(f, t, DepRelation::kAction, sch.object);
    }
    for (auto [f, t] : OrderedEdges(sch.added_deps)) {
      add(f, t, DepRelation::kAdded, sch.object);
    }
  }
  // Witness edges not covered by the (possibly absent) schedules still
  // render, so a provenance-off report yields a usable graph.
  for (const Witness& w : report_.witnesses) {
    for (const Witness::Edge& e : w.edges) {
      add(e.from.value, e.to.value, e.relation, w.object);
    }
  }

  std::set<uint64_t> nodes;
  for (const DotEdge& e : edges) {
    nodes.insert(e.from);
    nodes.insert(e.to);
  }

  std::ostringstream os;
  os << "digraph oodb_explain {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box, fontsize=10];\n";
  for (uint64_t n : nodes) {
    ActionId a(n);
    os << "  a" << n << " [label=\"" << DotEscape(Label(a));
    if (HasSpan(a)) os << "\\n(span " << n << ")";
    os << "\"";
    if (ts_.action(a).is_virtual) os << ", peripheries=2";
    os << "];\n";
  }
  for (const DotEdge& e : edges) {
    os << "  a" << e.from << " -> a" << e.to << " [label=\""
       << DepRelationName(e.relation) << " @ "
       << DotEscape(e.object.valid() ? ts_.object(e.object).name : "*")
       << "\"";
    if (e.relation == DepRelation::kTxn) os << ", style=bold";
    if (e.relation == DepRelation::kAdded) os << ", style=dashed";
    if (hot.count({int(e.relation), e.from, e.to})) {
      os << ", color=red, penwidth=2.0";
    }
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string Explainer::Json() const {
  std::ostringstream os;
  os << "{\n";
  os << "\"format\":\"oodb-explain-v1\",\n";
  os << "\"verdict\":{\"oo_serializable\":"
     << (report_.oo_serializable ? "true" : "false") << ",\"conventional\":"
     << (report_.conventionally_serializable ? "true" : "false")
     << ",\"conform\":" << (report_.conform ? "true" : "false")
     << ",\"globally_acyclic\":"
     << (report_.globally_acyclic ? "true" : "false") << "},\n";
  const DependencyStats& st = report_.stats;
  os << "\"stats\":{\"primitive_conflicts\":" << st.primitive_conflicts
     << ",\"inherited_txn_deps\":" << st.inherited_txn_deps
     << ",\"stopped_inheritance\":" << st.stopped_inheritance
     << ",\"added_deps\":" << st.added_deps << ",\"unordered_conflicts\":"
     << st.unordered_conflicts << ",\"fixpoint_rounds\":"
     << st.fixpoint_rounds << "},\n";
  const ExtensionStats& ext = report_.extension;
  os << "\"extension\":{\"cycles_broken\":" << ext.cycles_broken
     << ",\"virtual_objects\":" << ext.virtual_objects
     << ",\"virtual_actions\":" << ext.virtual_actions << "},\n";
  os << "\"provenance_edges\":"
     << (report_.provenance != nullptr ? report_.provenance->EdgeCount() : 0)
     << ",\n";

  // Everything below references actions by id; the action table at the
  // end resolves ids to labels, so the graph sections stay compact.
  std::set<uint64_t> referenced;
  auto note = [&referenced](ActionId a) {
    if (a.valid()) referenced.insert(a.value);
  };

  os << "\"witnesses\":[";
  for (size_t wi = 0; wi < report_.witnesses.size(); ++wi) {
    const Witness& w = report_.witnesses[wi];
    if (wi > 0) os << ",";
    os << "\n{\"kind\":\"" << WitnessKindName(w.kind) << "\",";
    if (w.object.valid()) {
      os << "\"object_id\":" << w.object.value << ",\"object\":\""
         << JsonEscape(ts_.object(w.object).name) << "\",";
    } else {
      os << "\"object_id\":null,\"object\":null,";
    }
    os << "\"cycle\":[";
    for (size_t i = 0; i < w.cycle.size(); ++i) {
      if (i > 0) os << ",";
      os << w.cycle[i].value;
      note(w.cycle[i]);
    }
    os << "],\"edges\":[";
    for (size_t ei = 0; ei < w.edges.size(); ++ei) {
      const Witness::Edge& e = w.edges[ei];
      if (ei > 0) os << ",";
      os << "{\"from\":" << e.from.value << ",\"to\":" << e.to.value
         << ",\"relation\":\"" << DepRelationName(e.relation)
         << "\",\"chain\":[";
      note(e.from);
      note(e.to);
      for (size_t si = 0; si < e.chain.size(); ++si) {
        const ProvenanceStep& s = e.chain[si];
        if (si > 0) os << ",";
        os << "{\"rule\":\"" << DepRuleName(s.rule) << "\",\"relation\":\""
           << DepRelationName(s.relation) << "\",\"object_id\":"
           << s.object.value << ",\"from\":" << s.from.value << ",\"to\":"
           << s.to.value << ",\"cause_object_id\":";
        if (s.cause_object.valid()) {
          os << s.cause_object.value;
        } else {
          os << "null";
        }
        os << ",\"cause_from\":" << s.cause_from.value << ",\"cause_to\":"
           << s.cause_to.value << "}";
        note(s.from);
        note(s.to);
        note(s.cause_from);
        note(s.cause_to);
      }
      os << "]}";
    }
    os << "],\"precedence_path\":[";
    for (size_t i = 0; i < w.precedence_path.size(); ++i) {
      if (i > 0) os << ",";
      os << w.precedence_path[i].value;
      note(w.precedence_path[i]);
    }
    os << "]}";
  }
  os << "],\n";

  os << "\"relations\":[";
  bool first_rel = true;
  if (options_.include_relations) {
    for (const ObjectSchedule& sch : report_.schedules) {
      if (!HasAnyEdge(sch)) continue;
      if (!first_rel) os << ",";
      first_rel = false;
      os << "\n{\"object_id\":" << sch.object.value << ",\"object\":\""
         << JsonEscape(ts_.object(sch.object).name) << "\",\"virtual\":"
         << (ts_.object(sch.object).is_virtual ? "true" : "false")
         << ",\"txn_deps\":";
      auto txn = OrderedEdges(sch.txn_deps);
      auto act = OrderedEdges(sch.action_deps);
      auto added = OrderedEdges(sch.added_deps);
      for (const auto& edge_list : {txn, act, added}) {
        for (const auto& [f, t] : edge_list) {
          note(ActionId(f));
          note(ActionId(t));
        }
      }
      JsonEdgeArray(txn, &os);
      os << ",\"action_deps\":";
      JsonEdgeArray(act, &os);
      os << ",\"added_deps\":";
      JsonEdgeArray(added, &os);
      os << "}";
    }
  }
  os << "],\n";

  os << "\"union\":";
  if (options_.include_union && !report_.schedules.empty()) {
    auto edges = OrderedEdges(UnionGraph(report_.schedules));
    for (const auto& [f, t] : edges) {
      note(ActionId(f));
      note(ActionId(t));
    }
    JsonEdgeArray(edges, &os);
  } else {
    os << "[]";
  }
  os << ",\n";

  os << "\"serialization_order\":[";
  for (size_t i = 0; i < report_.serialization_order.size(); ++i) {
    if (i > 0) os << ",";
    os << report_.serialization_order[i].value;
    note(report_.serialization_order[i]);
  }
  os << "],\n";

  os << "\"actions\":[";
  bool first_action = true;
  for (uint64_t id : referenced) {
    if (!first_action) os << ",";
    first_action = false;
    const ActionRecord& rec = ts_.action(ActionId(id));
    os << "\n{\"id\":" << id << ",\"label\":\""
       << JsonEscape(ts_.Describe(ActionId(id))) << "\",\"object_id\":"
       << rec.object.value << ",\"virtual\":"
       << (rec.is_virtual ? "true" : "false") << ",\"timestamp\":"
       << rec.timestamp << ",\"span\":"
       << (HasSpan(ActionId(id)) ? "true" : "false") << "}";
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace oodb
