// MetricsRegistry: the one reporting surface of the runtime and the
// analysis pipeline.
//
// The registry owns named counters (monotonic), gauges (set/add), and
// fixed-bucket histograms (the hist_layout of util/histogram, so every
// latency distribution in the repository shares one set of bucket
// boundaries). Lookup by name takes a mutex; instrumented code looks a
// metric up once, caches the pointer, and then increments lock-free —
// one relaxed atomic RMW per event, which is the whole cost of an
// attached registry. With no registry attached the instrumented layers
// skip even that (a null-pointer test), so the disabled path is close
// to free; the obs_overhead_smoke binary asserts the bound.
//
// Snapshots (text and JSON) iterate names in sorted order, so exports
// are deterministic given deterministic metric values.
//
// Metric names are part of the repository's stable surface, like
// oodb_lint's diagnostic vocabulary: once shipped in a release, a name
// keeps its meaning (see docs/OBSERVABILITY.md for the catalog).

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace oodb {

/// A monotonically increasing counter. Thread-safe; increments are one
/// relaxed fetch_add.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-value-wins gauge. Thread-safe.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// An immutable copy of a histogram's state, with the derived
/// statistics. What snapshots and the harness report from.
class HistogramSnapshot {
 public:
  HistogramSnapshot() : buckets_(hist_layout::kBucketCount, 0) {}

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  /// Per-bucket occupancy in the shared hist_layout. The sampler diffs
  /// consecutive snapshots bucket-by-bucket to export sparse deltas.
  const std::vector<uint64_t>& buckets() const { return buckets_; }
  double Mean() const { return count_ == 0 ? 0.0 : double(sum_) / double(count_); }
  uint64_t Quantile(double q) const {
    return hist_layout::Quantile(buckets_.data(), count_, max_, q);
  }
  /// "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  friend class HistogramMetric;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// A thread-safe histogram in the shared hist_layout. Observation is
/// lock-free (relaxed atomics per bucket); min/max converge via CAS
/// loops. Use util::Histogram instead when single-threaded.
class HistogramMetric {
 public:
  HistogramMetric();

  void Observe(uint64_t value);
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Named metrics with deterministic export. Get* registers on first use
/// and returns a pointer stable for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  /// A stable view of every registered metric, sorted by name. The
  /// pointers live as long as the registry, so a sampler enumerates
  /// once and re-reads lock-free until Version() changes.
  struct MetricRefs {
    std::vector<std::pair<std::string, const Counter*>> counters;
    std::vector<std::pair<std::string, const Gauge*>> gauges;
    std::vector<std::pair<std::string, const HistogramMetric*>> histograms;
  };
  MetricRefs Enumerate() const;

  /// Bumped whenever a name registers a new metric; unchanged Version()
  /// means a previously Enumerate()d MetricRefs is still complete.
  uint64_t Version() const { return version_.load(std::memory_order_acquire); }

  /// Convenience for publishing one-shot statistics structs.
  void SetGauge(const std::string& name, int64_t value) {
    GetGauge(name)->Set(value);
  }

  /// "name value" / "name count=... p50=..." lines, sorted by name.
  std::string TextSnapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names
  /// sorted; histograms export count/sum/min/max/mean and p50/p95/p99.
  std::string JsonSnapshot() const;

 private:
  mutable std::mutex mutex_;
  std::atomic<uint64_t> version_{0};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace oodb
