#include "analysis/analyzer.h"

#include <utility>

#include "analysis/spec_soundness.h"
#include "analysis/undo_completeness.h"

namespace oodb::analysis {

size_t AnalysisReport::CountBySeverity(Severity severity) const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

AnalysisReport AnalyzeSchema(const std::string& schema_name,
                             const Database& db,
                             const AnalyzerOptions& options) {
  AnalysisReport report;
  report.schema = schema_name;
  const MethodRegistry& registry = db.registry();

  for (const ObjectType* type : registry.Types()) {
    const TypeCorpus corpus = BuildTypeCorpus(type, registry);

    TypeSummary summary;
    summary.type_name = type->name();
    summary.methods = corpus.methods.size();
    const std::vector<Invocation> invs = corpus.Invocations();
    summary.invocations = invs.size();
    for (size_t i = 0; i < invs.size(); ++i) {
      for (size_t j = i; j < invs.size(); ++j) {
        ++summary.pairs;
        if (type->Commutes(invs[i], invs[j])) {
          ++summary.commuting_pairs;
        } else {
          ++summary.conflicting_pairs;
        }
      }
    }
    report.types.push_back(std::move(summary));

    auto Take = [&report](std::vector<Diagnostic> found) {
      for (Diagnostic& d : found) {
        report.diagnostics.push_back(std::move(d));
      }
    };
    Take(CheckSpecSoundness(corpus));
    Take(CheckMemoHonesty(corpus, options.honesty));
    Take(CheckUndoCompleteness(corpus));
    if (options.inference) {
      const InferredMatrix matrix =
          InferType(type, registry, options.inference_options);
      report.inference.Add(matrix);
      Take(CompareWithHand(matrix));
    }
    if (options.lock_conformance) {
      LockConformanceOptions lock_options;
      auto it = options.lock_references.find(type->name());
      if (it != options.lock_references.end()) {
        lock_options.reference = it->second;
      }
      Take(CheckLockConformance(corpus, lock_options));
    }
  }

  report.call_graph = AnalyzeCallGraph(registry);
  for (const Diagnostic& d : report.call_graph.diagnostics) {
    report.diagnostics.push_back(d);
  }
  SortDiagnostics(&report.diagnostics);
  return report;
}

std::string RenderText(const AnalysisReport& report, bool include_notes) {
  std::string out = "== oodb_lint: schema '" + report.schema + "' ==\n";
  for (const TypeSummary& t : report.types) {
    out += "  type " + t.type_name + ": " +
           std::to_string(t.methods) + " methods, " +
           std::to_string(t.invocations) + " probe invocations, " +
           std::to_string(t.conflicting_pairs) + "/" +
           std::to_string(t.pairs) + " pairs conflict\n";
  }
  size_t shown = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kNote && !include_notes) continue;
    out += "  " + d.ToString() + "\n";
    ++shown;
  }
  out += "  " + std::to_string(report.errors()) + " error(s), " +
         std::to_string(report.warnings()) + " warning(s), " +
         std::to_string(report.notes()) + " note(s)";
  if (!include_notes && shown < report.diagnostics.size()) {
    out += " (notes hidden; --notes shows them)";
  }
  out += "\n";
  return out;
}

std::string RenderJson(const AnalysisReport& report) {
  std::string out = "{\"schema\":\"" + JsonEscape(report.schema) + "\",";
  out += "\"types\":[";
  for (size_t i = 0; i < report.types.size(); ++i) {
    const TypeSummary& t = report.types[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(t.type_name) + "\"," +
           "\"methods\":" + std::to_string(t.methods) + "," +
           "\"invocations\":" + std::to_string(t.invocations) + "," +
           "\"pairs\":" + std::to_string(t.pairs) + "," +
           "\"conflicting_pairs\":" + std::to_string(t.conflicting_pairs) +
           "," +
           "\"commuting_pairs\":" + std::to_string(t.commuting_pairs) + "}";
  }
  out += "],\"call_graph\":[";
  for (size_t i = 0; i < report.call_graph.nodes.size(); ++i) {
    const CallGraphNode& n = report.call_graph.nodes[i];
    if (i > 0) out += ",";
    out += "{\"type\":\"" + JsonEscape(n.type_name) + "\"," +
           "\"method\":\"" + JsonEscape(n.method) + "\",\"calls\":[";
    for (size_t j = 0; j < n.calls.size(); ++j) {
      if (j > 0) out += ",";
      out += "{\"type\":\"" + JsonEscape(n.calls[j].type) +
             "\",\"method\":\"" + JsonEscape(n.calls[j].method) + "\"}";
    }
    out += "],\"def5_site\":";
    out += n.def5_site ? "true" : "false";
    if (n.def5_site) {
      out += ",\"def5_path\":\"" + JsonEscape(n.def5_path) + "\"";
    }
    out += "}";
  }
  out += "],\"diagnostics\":[";
  for (size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i > 0) out += ",";
    out += std::string("{\"severity\":\"") + SeverityName(d.severity) +
           "\",\"pass\":\"" + JsonEscape(d.pass) + "\"," +
           "\"type\":\"" + JsonEscape(d.type_name) + "\"," +
           "\"method_a\":\"" + JsonEscape(d.method_a) + "\"," +
           "\"method_b\":\"" + JsonEscape(d.method_b) + "\"," +
           "\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  out += "],\"errors\":" + std::to_string(report.errors()) +
         ",\"warnings\":" + std::to_string(report.warnings()) +
         ",\"notes\":" + std::to_string(report.notes()) + "}";
  return out;
}

}  // namespace oodb::analysis
