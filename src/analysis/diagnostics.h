// Diagnostics: the findings a lint pass emits.
//
// Every pass reports through this one vocabulary so the analyzer can
// merge, sort, and render findings uniformly. Severity decides gating:
// errors and warnings fail the lint (nonzero exit, CI red); notes are
// informational — Def 5 virtual-object sites and semantic commutativity
// beyond read/write classification are properties, not defects.

#pragma once

#include <string>
#include <vector>

namespace oodb::analysis {

enum class Severity {
  kNote,     ///< informational; never gates
  kWarning,  ///< likely defect or lost concurrency; gates
  kError,    ///< soundness violation (asymmetry, lying memo class, ...)
};

/// Stable lowercase name ("note", "warning", "error").
const char* SeverityName(Severity severity);

/// One finding, anchored to a type and (up to) a method pair.
struct Diagnostic {
  Severity severity = Severity::kNote;
  std::string pass;       ///< "spec-soundness", "memo-honesty", ...
  std::string type_name;  ///< the audited object type
  std::string method_a;   ///< first method of the pair ("" if n/a)
  std::string method_b;   ///< second method of the pair ("" if n/a)
  std::string message;

  /// "error[spec-soundness] Page.read/write: ...".
  std::string ToString() const;
};

/// Deterministic report order: (type, method_a, method_b, pass,
/// severity descending, message). Independent of discovery order.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

/// JSON string escaping for the machine-readable report.
std::string JsonEscape(const std::string& s);

}  // namespace oodb::analysis
