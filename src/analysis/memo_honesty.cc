#include "analysis/memo_honesty.h"

#include <map>
#include <string>
#include <utility>

namespace oodb::analysis {

namespace {

std::vector<bool> ProbeAll(const CommutativitySpec& spec,
                           const std::vector<Invocation>& invs) {
  std::vector<bool> answers;
  answers.reserve(invs.size() * invs.size());
  for (const Invocation& a : invs) {
    for (const Invocation& b : invs) {
      answers.push_back(spec.Commutes(a, b));
    }
  }
  return answers;
}

}  // namespace

std::vector<Diagnostic> CheckMemoHonesty(const TypeCorpus& corpus,
                                         const HonestyOptions& options) {
  std::vector<Diagnostic> out;
  const ObjectType* type = corpus.type;
  const CommutativitySpec& spec = type->commutativity();
  const CommutativityMemo memo = spec.memo();
  const std::vector<Invocation> invs = corpus.Invocations();

  if (memo == CommutativityMemo::kNone) {
    out.push_back({Severity::kNote, "memo-honesty", type->name(), "", "",
                   "declares kNone (state-dependent): every Def 9 query "
                   "reaches the spec; the conflict index never memoizes "
                   "this type"});
    return out;
  }

  // kMethodPair: one answer per method-name pair, whatever the
  // parameters. Probe all invocation combinations of each pair.
  if (memo == CommutativityMemo::kMethodPair) {
    std::map<std::pair<std::string, std::string>,
             std::pair<Invocation, Invocation>>
        reference;
    std::map<std::pair<std::string, std::string>, bool> answer;
    for (const Invocation& a : invs) {
      for (const Invocation& b : invs) {
        auto key = a.method <= b.method
                       ? std::make_pair(a.method, b.method)
                       : std::make_pair(b.method, a.method);
        const bool ans = spec.Commutes(a, b);
        auto [it, fresh] = answer.emplace(key, ans);
        if (fresh) {
          reference.emplace(key, std::make_pair(a, b));
        } else if (it->second != ans) {
          const auto& ref = reference.at(key);
          out.push_back(
              {Severity::kError, "memo-honesty", type->name(), key.first,
               key.second,
               "declares kMethodPair but the answer depends on "
               "parameters: Commutes(" + ref.first.ToString() + ", " +
                   ref.second.ToString() + ") = " +
                   (it->second ? "true" : "false") + " while Commutes(" +
                   a.ToString() + ", " + b.ToString() + ") = " +
                   (ans ? "true" : "false") +
                   " — a method-pair memo would serve the wrong answer"});
          it->second = ans;  // keep scanning; report each flip once
        }
      }
    }
  }

  // kMethodPair and kInvocationPair both promise state-independence:
  // the same invocation pair must answer identically across repeated
  // probes and across every caller-supplied state perturbation.
  const std::vector<bool> baseline = ProbeAll(spec, invs);
  const size_t rounds =
      options.state_perturbations.empty() ? 1
                                          : options.state_perturbations.size();
  for (size_t round = 0; round < rounds; ++round) {
    if (!options.state_perturbations.empty()) {
      options.state_perturbations[round]();
    }
    const std::vector<bool> probe = ProbeAll(spec, invs);
    for (size_t i = 0; i < invs.size(); ++i) {
      for (size_t j = 0; j < invs.size(); ++j) {
        const size_t k = i * invs.size() + j;
        if (probe[k] == baseline[k]) continue;
        out.push_back(
            {Severity::kError, "memo-honesty", type->name(),
             invs[i].method, invs[j].method,
             std::string("declares ") +
                 (memo == CommutativityMemo::kMethodPair
                      ? "kMethodPair"
                      : "kInvocationPair") +
                 " but Commutes(" + invs[i].ToString() + ", " +
                 invs[j].ToString() + ") changed from " +
                 (baseline[k] ? "true" : "false") + " to " +
                 (probe[k] ? "true" : "false") +
                 (options.state_perturbations.empty()
                      ? " between identical probes"
                      : " after a state perturbation") +
                 " — a memoized answer would be stale; declare kNone"});
        return out;  // one witness is enough; state leaks repeat widely
      }
    }
  }
  return out;
}

}  // namespace oodb::analysis
