// Pass 2 — memo-class honesty.
//
// A spec's CommutativityMemo declaration is a promise about what its
// answers depend on; the ConflictIndex caches exactly as far as that
// promise allows. A spec that lies — answers vary with parameters under
// kMethodPair, or with object state under kMethodPair/kInvocationPair —
// poisons every memoized conflict decision, silently corrupting the
// dependency analysis. This pass probes the spec with varied parameters
// (from the corpus) and, when the caller supplies state perturbations,
// with varied external state, and flags any answer that moves on an
// input the declared memo class says it cannot depend on.

#pragma once

#include <functional>
#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostics.h"

namespace oodb::analysis {

struct HonestyOptions {
  /// Callbacks that mutate whatever external state the schema's specs
  /// could observe (test hooks; object-state snapshots in a full
  /// system). Between rounds the pass re-asks every pair; any change
  /// under a memoizable declaration is an error.
  std::vector<std::function<void()>> state_perturbations;
};

std::vector<Diagnostic> CheckMemoHonesty(const TypeCorpus& corpus,
                                         const HonestyOptions& options = {});

}  // namespace oodb::analysis
