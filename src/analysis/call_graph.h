// Pass 4 — static call-graph analysis.
//
// Builds the type-level method call graph from the MethodTraits each
// registration declares (a static over-approximation of the Def 1/2
// "action sends messages" relation) and checks it against the schema:
//
//   * every declared call target must resolve to a registered method of
//     a registered type (dangling targets are schema rot);
//   * a primitive type (Def 3: "methods call no other actions") must
//     declare no outgoing calls;
//   * traits declared for a method that has no implementation, and
//     implementations without declared traits, are flagged — the
//     schema the linter audits must cover the code that runs;
//   * a method that can transitively re-reach its own receiver type is
//     a Def 5 virtual-object site (an execution may contain further
//     executions on objects of the same type — the B-tree insert that
//     splits into child inserts). Reported as a note with a witness
//     path: these sites are where the system-extension construction
//     (Def 5/6) does real work.

#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "cc/method_registry.h"

namespace oodb::analysis {

/// One node of the type-level call graph, with its declared edges.
struct CallGraphNode {
  std::string type_name;
  std::string method;
  std::vector<CallTarget> calls;   ///< declared, deduplicated
  bool def5_site = false;          ///< transitively re-reaches own type
  std::string def5_path;           ///< witness, "T.m -> U.n -> T.k"
};

struct CallGraphResult {
  std::vector<CallGraphNode> nodes;  ///< sorted by (type, method)
  std::vector<Diagnostic> diagnostics;
};

CallGraphResult AnalyzeCallGraph(const MethodRegistry& registry);

}  // namespace oodb::analysis
