// Pass 3 — lock-table conformance.
//
// The LockManager's compatibility decision must be exactly the Def 9
// relation: admit iff the invocations commute (plus the sphere rule and
// the kExclusive strawman, which blocks everything outside the sphere).
// The pass verifies this black-box, without touching LockManager
// internals: a throwaway TransactionSystem with a single object of the
// audited type, two top-level transactions, and a LockManager with a
// zero wait timeout, so an incompatible Acquire returns kDeadlock
// immediately instead of blocking. Every ordered corpus pair is probed
// in both lock semantics plus the same-sphere case.
//
// The expected relation defaults to the type's own spec; tests inject a
// divergent reference spec to prove the pass catches a lock table that
// disagrees with the specification.

#pragma once

#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostics.h"

namespace oodb::analysis {

struct LockConformanceOptions {
  /// The relation the lock table is audited against. Null means the
  /// type's own commutativity spec (the shipped configuration, in
  /// which runtime and reference share one source of truth).
  const CommutativitySpec* reference = nullptr;
};

std::vector<Diagnostic> CheckLockConformance(
    const TypeCorpus& corpus, const LockConformanceOptions& options = {});

}  // namespace oodb::analysis
