#include "analysis/commutativity_inference.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <mutex>
#include <utility>

#include "util/status.h"

namespace oodb::analysis {

namespace {

/// Probe parameter lists for one method: the corpus lists (declared
/// samples plus their full mutations) widened with per-position
/// mutations, so a keyed writer sees "same key, different payload"
/// combinations — the witness that separates DifferentParam from
/// DifferentParamOrIdentical. Deduplicated, declaration order.
std::vector<ValueList> ProbeParams(const MethodCorpus& method,
                                   const InferenceOptions& options) {
  std::vector<ValueList> out;
  auto add = [&out](const ValueList& params) {
    for (const ValueList& have : out) {
      if (have == params) return;
    }
    out.push_back(params);
  };
  for (const ValueList& params : method.params) {
    add(params);
  }
  for (const ValueList& params : method.params) {
    if (params.size() < 2) continue;
    for (size_t i = 0; i < params.size(); ++i) {
      ValueList mutated = params;
      ValueList shifted = MutateParams(params);
      mutated[i] = shifted[i];
      add(mutated);
    }
  }
  if (options.max_params_per_method != 0 &&
      out.size() > options.max_params_per_method) {
    out.resize(options.max_params_per_method);
  }
  return out;
}

}  // namespace

const char* EntryKindName(EntryKind kind) {
  switch (kind) {
    case EntryKind::kCommutes: return "commute";
    case EntryKind::kConflicts: return "conflict";
    case EntryKind::kDifferentParam: return "different-param";
    case EntryKind::kSameParam: return "same-param";
    case EntryKind::kDifferentParamOrIdentical:
      return "different-param-or-identical";
    case EntryKind::kEvidence: return "evidence-table";
    case EntryKind::kDelegate: return "declared";
  }
  return "?";
}

bool MethodPairEntry::Commutes(const Invocation& x,
                               const Invocation& y) const {
  switch (kind) {
    case EntryKind::kCommutes:
      return true;
    case EntryKind::kConflicts:
      return false;
    case EntryKind::kDifferentParam:
      if (x.params.size() <= param_index || y.params.size() <= param_index) {
        return false;
      }
      return !(x.params[param_index] == y.params[param_index]);
    case EntryKind::kSameParam:
      if (x.params.size() <= param_index || y.params.size() <= param_index) {
        return false;
      }
      return x.params[param_index] == y.params[param_index];
    case EntryKind::kDifferentParamOrIdentical:
      if (x == y) return true;
      if (x.params.size() <= param_index || y.params.size() <= param_index) {
        return false;
      }
      return !(x.params[param_index] == y.params[param_index]);
    case EntryKind::kEvidence:
      for (const PairEvidence& ev : evidence) {
        if ((ev.a == x && ev.b == y) || (ev.a == y && ev.b == x)) {
          return ev.Commutes();
        }
      }
      return false;  // off-corpus: conservative
    case EntryKind::kDelegate:
      return false;  // answered by the hand spec at the matrix level
  }
  return false;
}

size_t InferredMatrix::gained_pairs() const {
  size_t n = 0;
  for (const MethodPairEntry& e : entries) {
    if (e.gained > 0) ++n;
  }
  return n;
}

size_t InferredMatrix::unsound_pairs() const {
  size_t n = 0;
  for (const MethodPairEntry& e : entries) {
    if (e.unsound > 0) ++n;
  }
  return n;
}

const MethodPairEntry* InferredMatrix::Entry(const std::string& a,
                                             const std::string& b) const {
  const std::string& lo = a <= b ? a : b;
  const std::string& hi = a <= b ? b : a;
  for (const MethodPairEntry& e : entries) {
    if (e.method_a == lo && e.method_b == hi) return &e;
  }
  return nullptr;
}

bool InferredMatrix::Commutes(const Invocation& x,
                              const Invocation& y) const {
  const MethodPairEntry* e = Entry(x.method, y.method);
  if (e == nullptr) return false;
  if (e->kind == EntryKind::kDelegate) {
    return type != nullptr && type->Commutes(x, y);
  }
  return e->Commutes(x, y);
}

std::map<std::pair<std::string, std::string>, bool> DeepObservers(
    const MethodRegistry& registry) {
  std::map<std::string, const ObjectType*> by_name;
  for (const ObjectType* type : registry.Types()) {
    by_name[type->name()] = type;
  }
  // Optimistic start: every declared observer is deep; strip any whose
  // declared call set reaches a non-observer (or an unknown target)
  // until the fixpoint — the greatest solution of
  //   deep(m) = observer(m) AND forall t in calls(m): deep(t).
  std::map<std::pair<std::string, std::string>, bool> deep;
  for (const ObjectType* type : registry.Types()) {
    for (const std::string& method : registry.MethodsOf(type)) {
      const MethodTraits* traits = registry.Traits(type, method);
      deep[{type->name(), method}] =
          traits != nullptr && traits->Declared() && traits->observer;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [key, is_deep] : deep) {
      if (!is_deep) continue;
      auto type_it = by_name.find(key.first);
      const MethodTraits* traits =
          registry.Traits(type_it->second, key.second);
      for (const CallTarget& call : traits->calls) {
        auto it = deep.find({call.type, call.method});
        if (it == deep.end() || !it->second) {
          is_deep = false;
          changed = true;
          break;
        }
      }
    }
  }
  return deep;
}

// ---------------------------------------------------------------------
// State probing
// ---------------------------------------------------------------------

/// Executes primitive method bodies against generated states. Friend of
/// MethodContext: it builds contexts with a null database, which is
/// sound exactly for Def 3 methods (they never Call out).
class StateProber {
 public:
  StateProber(const ObjectType* type, const MethodRegistry& registry,
              const TypeProbeTraits& probe)
      : type_(type), registry_(registry), probe_(probe) {}

  /// Outcome of one invocation slot of a two-invocation run.
  struct SlotOutcome {
    StatusCode code = StatusCode::kOk;
    std::string ret;  ///< rendered return value; "" unless code == kOk

    friend bool operator==(const SlotOutcome& a, const SlotOutcome& b) {
      return a.code == b.code && a.ret == b.ret;
    }
  };

  struct RunOutcome {
    SlotOutcome slots[2];
    std::string fingerprint;
    bool HasConflictRefusal() const {
      return slots[0].code == StatusCode::kConflict ||
             slots[1].code == StatusCode::kConflict;
    }
  };

  /// Runs [first; second] from a fresh instance of `state_class`.
  RunOutcome Run(const StateClass& state_class, const Invocation& first,
                 const Invocation& second) {
    std::unique_ptr<ObjectState> state = state_class.make();
    std::mutex latch;
    RunOutcome out;
    const Invocation* invs[2] = {&first, &second};
    for (int slot = 0; slot < 2; ++slot) {
      const MethodImpl* impl = registry_.Find(type_, invs[slot]->method);
      MethodContext ctx(nullptr, ActionId(), ObjectId(), state.get(),
                        &latch, nullptr, type_);
      Value result;
      Status status = (*impl)(ctx, invs[slot]->params, &result);
      out.slots[slot].code = status.code();
      if (status.ok()) out.slots[slot].ret = result.ToString();
    }
    out.fingerprint = probe_.fingerprint(*state);
    return out;
  }

  /// Runs `inv` alone from a fresh instance; true iff the fingerprint
  /// stayed put (the observer-honesty check).
  bool LeavesStateUnchanged(const StateClass& state_class,
                            const Invocation& inv) {
    std::unique_ptr<ObjectState> state = state_class.make();
    const std::string before = probe_.fingerprint(*state);
    std::mutex latch;
    const MethodImpl* impl = registry_.Find(type_, inv.method);
    MethodContext ctx(nullptr, ActionId(), ObjectId(), state.get(), &latch,
                      nullptr, type_);
    Value result;
    (void)(*impl)(ctx, inv.params, &result);
    return probe_.fingerprint(*state) == before;
  }

 private:
  const ObjectType* type_;
  const MethodRegistry& registry_;
  const TypeProbeTraits& probe_;
};

namespace {

/// Probes one unordered invocation pair across every state class and
/// folds the outcomes into PairEvidence. Both orders always run; each
/// invocation instance is compared with *itself* across the two runs
/// (first slot of one order against second slot of the other), which
/// catches order-observable returns even when the two invocations are
/// identical (deq/deq, insert(k,v)/insert(k,v)).
PairEvidence ProbePair(StateProber& prober, const TypeProbeTraits& probe,
                       const Invocation& a, const Invocation& b,
                       const InferenceOptions& options,
                       InferredMatrix* stats) {
  PairEvidence ev;
  ev.a = a;
  ev.b = b;
  for (const StateClass& sc : probe.states) {
    StateProber::RunOutcome ab = prober.Run(sc, a, b);
    StateProber::RunOutcome ba = prober.Run(sc, b, a);
    stats->probe_runs += 2;
    // Instance of `a`: slot 0 of [a;b], slot 1 of [b;a]. Instance of
    // `b`: slot 1 of [a;b], slot 0 of [b;a].
    const bool a_same = ab.slots[0] == ba.slots[1];
    const bool b_same = ab.slots[1] == ba.slots[0];
    const bool state_same = ab.fingerprint == ba.fingerprint;
    if (a_same && b_same && state_same) {
      ++ev.equivalent;
      continue;
    }
    if (options.conflict_means_unadmitted &&
        (ab.HasConflictRefusal() || ba.HasConflictRefusal())) {
      // The admissibility test refused an order: the refused action
      // never enters a history from this state, so the flip yields no
      // evidence either way (escrow semantics).
      ++ev.vacuous;
      ++stats->vacuous_runs;
      continue;
    }
    ++ev.divergent;
    if (ev.witness.empty()) {
      std::string what;
      if (!a_same) {
        what = a.ToString() + ": " + StatusCodeName(ab.slots[0].code) +
               " \"" + ab.slots[0].ret + "\" vs " +
               StatusCodeName(ba.slots[1].code) + " \"" + ba.slots[1].ret +
               "\"";
      } else if (!b_same) {
        what = b.ToString() + ": " + StatusCodeName(ab.slots[1].code) +
               " \"" + ab.slots[1].ret + "\" vs " +
               StatusCodeName(ba.slots[0].code) + " \"" + ba.slots[0].ret +
               "\"";
      } else {
        what = "final state \"" + ab.fingerprint + "\" vs \"" +
               ba.fingerprint + "\"";
      }
      ev.witness = "state '" + sc.name + "': " + what;
    }
  }
  return ev;
}

/// Fits the tightest closed shape that reproduces every probed outcome.
/// A parameter shape is accepted only when it matches the evidence
/// exactly AND is exercised on both sides (predicts commute for at
/// least one combination and conflict for at least one) — an
/// unexercised shape would generalize beyond its evidence.
void FitEntry(MethodPairEntry* entry) {
  std::vector<const PairEvidence*> evidenced;
  for (const PairEvidence& ev : entry->evidence) {
    if (ev.equivalent + ev.divergent > 0) evidenced.push_back(&ev);
  }
  if (evidenced.empty()) {
    entry->kind = EntryKind::kConflicts;  // no admissible evidence
    return;
  }
  auto commutes = [](const PairEvidence* ev) {
    return ev->divergent == 0 && ev->equivalent > 0;
  };

  bool all_commute = true, none_commute = true;
  size_t min_arity = SIZE_MAX;
  for (const PairEvidence* ev : evidenced) {
    (commutes(ev) ? none_commute : all_commute) = false;
    min_arity = std::min(min_arity,
                         std::min(ev->a.params.size(), ev->b.params.size()));
  }
  if (all_commute) {
    entry->kind = EntryKind::kCommutes;
    return;
  }

  auto fits = [&](auto predicate, size_t* exercised_commute,
                  size_t* exercised_conflict) {
    *exercised_commute = *exercised_conflict = 0;
    for (const PairEvidence* ev : evidenced) {
      const bool predicted = predicate(ev->a, ev->b);
      if (predicted != commutes(ev)) return false;
      ++(predicted ? *exercised_commute : *exercised_conflict);
    }
    return *exercised_commute > 0 && *exercised_conflict > 0;
  };

  struct Shape {
    EntryKind kind;
    std::function<bool(const Invocation&, const Invocation&)> predicate;
  };
  for (size_t i = 0; i < (min_arity == SIZE_MAX ? 0 : min_arity); ++i) {
    const Shape shapes[] = {
        {EntryKind::kDifferentParam,
         [i](const Invocation& x, const Invocation& y) {
           return !(x.params[i] == y.params[i]);
         }},
        {EntryKind::kSameParam,
         [i](const Invocation& x, const Invocation& y) {
           return x.params[i] == y.params[i];
         }},
        {EntryKind::kDifferentParamOrIdentical,
         [i](const Invocation& x, const Invocation& y) {
           return x == y || !(x.params[i] == y.params[i]);
         }},
    };
    for (const Shape& shape : shapes) {
      size_t on = 0, off = 0;
      if (fits(shape.predicate, &on, &off)) {
        entry->kind = shape.kind;
        entry->param_index = i;
        return;
      }
    }
  }
  entry->kind = none_commute ? EntryKind::kConflicts : EntryKind::kEvidence;
}

}  // namespace

InferredMatrix InferType(const ObjectType* type,
                         const MethodRegistry& registry,
                         const InferenceOptions& options) {
  InferredMatrix matrix;
  matrix.type = type;
  matrix.type_name = type->name();
  const TypeCorpus corpus = BuildTypeCorpus(type, registry);
  const TypeProbeTraits* probe = registry.ProbeTraits(type);

  // A type is probeable when it declared generators, is primitive
  // (Def 3: bodies never Call out, so a bare-state context is the whole
  // world), and every method has an executable implementation.
  bool probeable =
      probe != nullptr && probe->Declared() && type->primitive();
  if (probeable) {
    for (const MethodCorpus& m : corpus.methods) {
      if (registry.Find(type, m.method) == nullptr) probeable = false;
    }
  }
  matrix.probed = probeable;

  if (!probeable) {
    // Declared evidence: the audited hand spec, tightened by the
    // deep-observer rule. Everything else delegates.
    const auto deep = DeepObservers(registry);
    auto is_deep = [&](const std::string& method) {
      auto it = deep.find({type->name(), method});
      return it != deep.end() && it->second;
    };
    for (size_t i = 0; i < corpus.methods.size(); ++i) {
      for (size_t j = i; j < corpus.methods.size(); ++j) {
        MethodPairEntry entry;
        entry.method_a = corpus.methods[i].method;
        entry.method_b = corpus.methods[j].method;
        if (is_deep(entry.method_a) && is_deep(entry.method_b)) {
          entry.kind = EntryKind::kCommutes;
          entry.source = EntrySource::kObserver;
          // Lost concurrency: corpus combinations the hand spec
          // refuses although both sides transitively only observe.
          for (const ValueList& pa : corpus.methods[i].params) {
            for (const ValueList& pb : corpus.methods[j].params) {
              if (!type->Commutes(Invocation(entry.method_a, pa),
                                  Invocation(entry.method_b, pb))) {
                ++entry.gained;
              }
            }
          }
        } else {
          entry.kind = EntryKind::kDelegate;
          entry.source = EntrySource::kDeclared;
        }
        matrix.entries.push_back(std::move(entry));
      }
    }
    return matrix;
  }

  const auto start = std::chrono::steady_clock::now();
  StateProber prober(type, registry, *probe);

  // Observer honesty: a probe-visible mutation under an observer flag
  // would poison both the deep-observer rule and the declared readers.
  for (const MethodCorpus& m : corpus.methods) {
    if (!m.observer) continue;
    for (const ValueList& params : ProbeParams(m, options)) {
      for (const StateClass& sc : probe->states) {
        if (!prober.LeavesStateUnchanged(sc, Invocation(m.method, params))) {
          matrix.observer_violations.push_back({m.method, sc.name});
          break;
        }
      }
      if (!matrix.observer_violations.empty() &&
          matrix.observer_violations.back().method == m.method) {
        break;
      }
    }
  }

  for (size_t i = 0; i < corpus.methods.size(); ++i) {
    const std::vector<ValueList> params_a =
        ProbeParams(corpus.methods[i], options);
    for (size_t j = i; j < corpus.methods.size(); ++j) {
      const std::vector<ValueList> params_b =
          ProbeParams(corpus.methods[j], options);
      MethodPairEntry entry;
      entry.method_a = corpus.methods[i].method;
      entry.method_b = corpus.methods[j].method;
      entry.source = EntrySource::kProbed;
      for (size_t pa = 0; pa < params_a.size(); ++pa) {
        // Same method: unordered combinations only.
        const size_t pb_start = i == j ? pa : 0;
        for (size_t pb = pb_start; pb < params_b.size(); ++pb) {
          Invocation a(entry.method_a, params_a[pa]);
          Invocation b(entry.method_b, params_b[pb]);
          PairEvidence ev =
              ProbePair(prober, *probe, a, b, options, &matrix);
          ++matrix.pairs_probed;
          // Compare against the hand spec on this combination.
          const bool hand = type->Commutes(a, b);
          if (hand && ev.divergent > 0) {
            ++entry.unsound;
            if (entry.unsound_witness.empty()) {
              entry.unsound_witness = ev.witness;
            }
          }
          if (!hand && ev.Commutes()) ++entry.gained;
          entry.evidence.push_back(std::move(ev));
        }
      }
      FitEntry(&entry);
      matrix.entries.push_back(std::move(entry));
    }
  }
  matrix.probe_ns = uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
  return matrix;
}

}  // namespace oodb::analysis
