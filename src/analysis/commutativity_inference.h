// Automatic commutativity inference: synthesize the tightest sound
// conflict matrix per type (ROADMAP item 4).
//
// The paper assumes "a commutativity matrix for every object for all
// their actions" but leaves writing it to an expert. Malta & Martinez
// ("Automating Fine Concurrency Control in Object-Oriented Databases",
// "Limits of Commutativity on Abstract Data Types") show the relation
// can be derived from method semantics. This engine does so from three
// evidence sources:
//
//   1. State probing (primitive types with declared TypeProbeTraits):
//      for every unordered invocation pair, execute the two method
//      bodies in both orders from every declared state class and
//      compare per-invocation return values, status codes, and the
//      final abstract-state fingerprint — Def 9's "effect and results
//      independent of execution order", decided experimentally. This
//      generalizes the memo-honesty prober from spot-checking declared
//      answers to constructing the full matrix.
//   2. Return-value / argument classification: the per-pair outcomes
//      are fitted to closed predicate shapes (always, never, parameter
//      i differs, parameter i equal, differs-or-identical), so keyed
//      and escrow-style entries come out as conditional predicates
//      rather than flat booleans. An order flip that fails with
//      StatusCode::kConflict is the escrow admissibility test refusing
//      the action: the action never enters a history from that state,
//      so the probe is vacuous rather than a divergence (the paper's
//      escrow method "includes parameter values and the status of
//      accessed objects in the commutativity definition").
//   3. Declared evidence (composite types, which cannot be probed
//      against a bare state because their methods call other objects):
//      the audited hand spec, tightened by the deep-observer rule —
//      two methods that transitively only observe always commute.
//
// Soundness is relative to the probe corpus and the declared state
// classes (exact commutativity is undecidable in general — "Limits of
// Commutativity"); a predicate shape is only accepted when it
// reproduces every probed outcome and is exercised on both sides, and
// pairs no shape explains fall back to the exact evidence table
// (commute only for combinations witnessed equivalent in every state).

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/corpus.h"

namespace oodb::analysis {

struct InferenceOptions {
  /// Treat an order flip that fails with StatusCode::kConflict as "not
  /// admitted" (escrow semantics): the probe yields no evidence instead
  /// of a divergence. Disable to demand strict forward commutativity.
  bool conflict_means_unadmitted = true;

  /// When nonzero, at most this many parameter lists per method enter
  /// the probe corpus (monotonicity tests shrink the corpus this way).
  size_t max_params_per_method = 0;
};

/// Aggregated probe outcomes of one unordered invocation pair.
struct PairEvidence {
  Invocation a, b;
  size_t equivalent = 0;  ///< states where both orders agreed
  size_t divergent = 0;   ///< states where order was observable
  size_t vacuous = 0;     ///< states where an order was not admitted
  std::string witness;    ///< first divergence, for diagnostics

  /// Sound to commute: never diverged, and at least one state produced
  /// real (non-vacuous) agreement.
  bool Commutes() const { return divergent == 0 && equivalent > 0; }
};

/// The closed shape fitted to one method pair's evidence.
enum class EntryKind {
  kCommutes,                  ///< every combination equivalent
  kConflicts,                 ///< no combination equivalent
  kDifferentParam,            ///< commute iff params[i] differ
  kSameParam,                 ///< commute iff params[i] equal
  kDifferentParamOrIdentical, ///< differ at i, or identical invocations
  kEvidence,                  ///< no shape fits: exact witnessed table
  kDelegate,                  ///< not probed: the audited hand spec
};

const char* EntryKindName(EntryKind kind);

/// Where an entry's verdict came from.
enum class EntrySource {
  kProbed,    ///< state probing
  kObserver,  ///< deep-observer rule
  kDeclared,  ///< the hand spec (composite types)
};

/// One inferred matrix entry (unordered method pair, method_a <=
/// method_b). `Commutes` answers for the synthesized spec.
struct MethodPairEntry {
  std::string method_a, method_b;
  EntryKind kind = EntryKind::kConflicts;
  size_t param_index = 0;  ///< for the parameter-shaped kinds
  EntrySource source = EntrySource::kDeclared;
  std::vector<PairEvidence> evidence;  ///< deterministic order

  /// Invocation pairs the hand spec conflicts but the inference
  /// commutes (lost concurrency), and pairs the hand spec commutes but
  /// probing refutes (unsoundness).
  size_t gained = 0;
  size_t unsound = 0;
  std::string unsound_witness;

  /// The entry's answer for (x, y); symmetric. kDelegate entries answer
  /// via the hand spec (the caller passes it down from the type).
  bool Commutes(const Invocation& x, const Invocation& y) const;
};

/// An observer-flagged method whose probe run mutated the state.
struct ObserverViolation {
  std::string method;
  std::string state_class;
};

/// The complete inference result for one type.
struct InferredMatrix {
  const ObjectType* type = nullptr;
  std::string type_name;
  bool probed = false;  ///< probe traits were declared and usable
  std::vector<MethodPairEntry> entries;  ///< (method_a, method_b) order
  std::vector<ObserverViolation> observer_violations;

  size_t pairs_probed = 0;   ///< unordered invocation pairs probed
  size_t probe_runs = 0;     ///< method-sequence executions
  size_t vacuous_runs = 0;   ///< state/pair probes with no evidence
  uint64_t probe_ns = 0;     ///< wall time spent probing

  size_t gained_pairs() const;   ///< entries with gained > 0
  size_t unsound_pairs() const;  ///< entries with unsound > 0

  const MethodPairEntry* Entry(const std::string& a,
                               const std::string& b) const;

  /// The inferred answer for (x, y): the entry's answer, or the hand
  /// spec for kDelegate entries, or conflict when no entry exists.
  bool Commutes(const Invocation& x, const Invocation& y) const;
};

/// (type name, method) -> transitively-observing, computed over the
/// registry's declared traits: observer methods all of whose declared
/// call targets are themselves deep observers.
std::map<std::pair<std::string, std::string>, bool> DeepObservers(
    const MethodRegistry& registry);

/// Infers the matrix for one type. Probes when the registry declares
/// TypeProbeTraits and the type is primitive; otherwise classifies the
/// declared spec over the corpus and applies the deep-observer rule.
InferredMatrix InferType(const ObjectType* type,
                         const MethodRegistry& registry,
                         const InferenceOptions& options = {});

}  // namespace oodb::analysis
