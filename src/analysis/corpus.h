// Invocation corpus: the probe inputs for the dynamic-on-spec passes.
//
// The linter never runs a workload; it drives each type's
// CommutativitySpec (a pure value-level object) over a generated corpus
// of invocations. The corpus comes from the schema itself: the sample
// ValueLists each method declares in its MethodTraits, widened with
// deterministic mutations (ints shifted, strings extended) so
// parameter-sensitive predicates — DifferentParam and friends — are
// exercised on both the equal and the unequal side.

#pragma once

#include <string>
#include <vector>

#include "cc/method_registry.h"
#include "model/invocation.h"
#include "model/object_type.h"

namespace oodb::analysis {

/// One method's probe set.
struct MethodCorpus {
  std::string method;
  bool observer = false;               ///< from MethodTraits
  bool has_traits = false;             ///< traits were declared at all
  bool undo_free = false;              ///< no-comp paths are identities
  std::vector<std::string> compensations;  ///< declared undo methods
  std::vector<ValueList> params;       ///< deduplicated, declared order
};

/// Everything the value-level passes need to probe one type.
struct TypeCorpus {
  const ObjectType* type = nullptr;
  std::vector<MethodCorpus> methods;   ///< sorted by method name

  /// All invocations, flattened in (method, sample) order.
  std::vector<Invocation> Invocations() const;
};

/// Deterministic mutation of a parameter list: ints + 1, strings with a
/// '~' appended, None untouched. Preserves arity and value kinds.
ValueList MutateParams(const ValueList& params);

/// Builds the corpus for `type` from the registry's declared traits.
/// Methods without declared samples contribute one empty-parameter
/// invocation; every declared sample also contributes its mutation.
TypeCorpus BuildTypeCorpus(const ObjectType* type,
                           const MethodRegistry& registry);

}  // namespace oodb::analysis
