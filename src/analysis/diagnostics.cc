#include "analysis/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

namespace oodb::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += "[" + pass + "] " + type_name;
  if (!method_a.empty()) {
    out += "." + method_a;
    if (!method_b.empty()) out += "/" + method_b;
  }
  out += ": " + message;
  return out;
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(
      diagnostics->begin(), diagnostics->end(),
      [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.type_name, a.method_a, a.method_b, a.pass,
                        b.severity, a.message) <
               std::tie(b.type_name, b.method_a, b.method_b, b.pass,
                        a.severity, b.message);
      });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace oodb::analysis
