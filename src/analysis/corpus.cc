#include "analysis/corpus.h"

#include <algorithm>

namespace oodb::analysis {

std::vector<Invocation> TypeCorpus::Invocations() const {
  std::vector<Invocation> out;
  for (const MethodCorpus& m : methods) {
    for (const ValueList& p : m.params) out.emplace_back(m.method, p);
  }
  return out;
}

ValueList MutateParams(const ValueList& params) {
  ValueList out;
  out.reserve(params.size());
  for (const Value& v : params) {
    if (v.IsInt()) {
      out.emplace_back(v.AsInt() + 1);
    } else if (v.IsString()) {
      out.emplace_back(v.AsString() + "~");
    } else {
      out.push_back(v);
    }
  }
  return out;
}

TypeCorpus BuildTypeCorpus(const ObjectType* type,
                           const MethodRegistry& registry) {
  TypeCorpus corpus;
  corpus.type = type;
  for (const std::string& name : registry.MethodsOf(type)) {
    MethodCorpus mc;
    mc.method = name;
    const MethodTraits* traits = registry.Traits(type, name);
    if (traits != nullptr) {
      mc.has_traits = traits->Declared();
      mc.observer = traits->observer;
      mc.undo_free = traits->undo_free;
      mc.compensations = traits->compensations;
      for (const ValueList& sample : traits->samples) {
        mc.params.push_back(sample);
        if (!sample.empty()) mc.params.push_back(MutateParams(sample));
      }
    }
    if (mc.params.empty()) mc.params.push_back({});
    // Dedup, keeping first occurrence so declared order stays stable.
    std::vector<ValueList> unique;
    for (ValueList& p : mc.params) {
      if (std::find(unique.begin(), unique.end(), p) == unique.end()) {
        unique.push_back(std::move(p));
      }
    }
    mc.params = std::move(unique);
    corpus.methods.push_back(std::move(mc));
  }
  return corpus;
}

}  // namespace oodb::analysis
