// Spec synthesis: everything that turns an InferredMatrix (see
// commutativity_inference.h) into usable artifacts —
//
//   * SynthesizedSpec: a loadable CommutativitySpec, installed next to
//     the hand spec via TransactionSystem::SetSpecOverride so the s2/s6
//     benches and the equivalence tests can validate one recorded run
//     under both matrices;
//   * CompareWithHand: lint pass 6 ("inference") — a hand entry looser
//     than probing supports is an unsoundness error, a hand entry
//     tighter than the inference proves necessary is a lost-concurrency
//     note;
//   * renderers: deterministic text (golden-diffable: no timings), JSON
//     (with probe counters and timings), and a compilable C++ table for
//     pasting back into a schema.

#pragma once

#include <string>
#include <vector>

#include "analysis/commutativity_inference.h"
#include "analysis/diagnostics.h"
#include "model/commutativity.h"

namespace oodb::analysis {

/// The inferred matrix as a CommutativitySpec. Probed entries answer
/// from their fitted shape (or the exact evidence table); kDelegate
/// entries answer from the type's hand spec; unknown methods conflict.
class SynthesizedSpec : public CommutativitySpec {
 public:
  explicit SynthesizedSpec(InferredMatrix matrix);

  bool Commutes(const Invocation& a, const Invocation& b) const override;

  /// Shape and evidence-table answers are pure in the invocation pair.
  /// A delegate entry inherits the hand spec's honesty: if that spec
  /// declares kNone (state-dependent), so must we.
  CommutativityMemo memo() const override { return memo_; }

  const InferredMatrix& matrix() const { return matrix_; }

 private:
  InferredMatrix matrix_;
  CommutativityMemo memo_;
};

/// Aggregated inference counters, published as infer.* metrics by
/// oodb_lint and oodb_infer (--metrics-json).
struct InferenceStats {
  size_t types = 0;
  size_t types_probed = 0;
  size_t pairs_probed = 0;
  size_t probe_runs = 0;
  size_t vacuous_runs = 0;
  size_t entries_tightened = 0;  ///< entries with gained combinations
  size_t entries_unsound = 0;    ///< entries probing refuted
  uint64_t probe_ns = 0;

  void Add(const InferredMatrix& matrix);
};

/// Lint pass 6: the inferred matrix against the shipped spec.
///   error  — hand spec commutes where probing witnessed divergence, or
///            an observer-flagged method mutated a probe state;
///   note   — hand spec conflicts where inference proves commutativity
///            (lost concurrency), or a primitive type declares no probe
///            traits (inference fell back to declared evidence).
std::vector<Diagnostic> CompareWithHand(const InferredMatrix& matrix);

/// One type's matrix, human-readable and byte-stable across runs (probe
/// timings are deliberately excluded — CI diffs this against goldens).
std::string RenderInferredText(const InferredMatrix& matrix);

/// One type's matrix as a JSON object (includes probe counters and
/// probe_ns; not golden-diffed).
std::string RenderInferredJson(const InferredMatrix& matrix);

/// A compilable C++ fragment building a PredicateCommutativity with the
/// inferred entries. Evidence-table and delegate entries cannot be
/// expressed as closed predicates; they are emitted conservatively
/// (conflict / the hand spec's job) with a comment saying so.
std::string RenderInferredCpp(const InferredMatrix& matrix);

}  // namespace oodb::analysis
