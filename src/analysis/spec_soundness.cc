#include "analysis/spec_soundness.h"

#include <set>
#include <string>
#include <utility>

namespace oodb::analysis {

namespace {

/// One finding per (method pair, kind), not per invocation pair: the
/// first witnessing invocation pair goes into the message, repeats are
/// dropped so a bad method pair with many samples stays one line.
class Dedup {
 public:
  bool Seen(const std::string& kind, const std::string& a,
            const std::string& b) {
    return !seen_.insert(kind + "|" + a + "|" + b).second;
  }

 private:
  std::set<std::string> seen_;
};

}  // namespace

std::vector<Diagnostic> CheckSpecSoundness(const TypeCorpus& corpus) {
  std::vector<Diagnostic> out;
  const ObjectType* type = corpus.type;
  const CommutativitySpec& spec = type->commutativity();
  Dedup dedup;

  // Observer classification for the primitive cross-check. Methods
  // without traits are treated as mutators (the conservative side).
  std::set<std::string> observers;
  for (const MethodCorpus& m : corpus.methods) {
    if (m.observer) observers.insert(m.method);
  }

  const std::vector<Invocation> invs = corpus.Invocations();
  for (size_t i = 0; i < invs.size(); ++i) {
    for (size_t j = i; j < invs.size(); ++j) {
      const Invocation& a = invs[i];
      const Invocation& b = invs[j];
      const bool ab = spec.Commutes(a, b);
      const bool ba = spec.Commutes(b, a);
      if (ab != ba && !dedup.Seen("sym", a.method, b.method)) {
        out.push_back(
            {Severity::kError, "spec-soundness", type->name(), a.method,
             b.method,
             "asymmetric: Commutes(" + a.ToString() + ", " + b.ToString() +
                 ") = " + (ab ? "true" : "false") + " but Commutes(" +
                 b.ToString() + ", " + a.ToString() + ") = " +
                 (ba ? "true" : "false") +
                 " — Def 9 requires a symmetric relation"});
      }
      if (!type->primitive()) continue;
      // Conventional zero-layer classification: commute iff both read.
      const bool conventional =
          observers.count(a.method) > 0 && observers.count(b.method) > 0;
      if (conventional && !ab &&
          !dedup.Seen("rw-lost", a.method, b.method)) {
        out.push_back(
            {Severity::kWarning, "spec-soundness", type->name(), a.method,
             b.method,
             "two observers conflict (" + a.ToString() + " vs " +
                 b.ToString() +
                 "): the spec admits less concurrency than conventional "
                 "read/write locking on this primitive type"});
      }
      if (!conventional && ab &&
          !dedup.Seen("rw-gain", a.method, b.method)) {
        out.push_back(
            {Severity::kNote, "spec-soundness", type->name(), a.method,
             b.method,
             "commutes although a mutator is involved (" + a.ToString() +
                 " vs " + b.ToString() +
                 "): semantic commutativity beyond the conventional "
                 "read/write classification"});
      }
    }
  }

  // Open-world conservatism: a method name the spec has never heard of
  // must conflict with every corpus invocation (and with itself).
  const Invocation unknown("__oodb_lint_unknown__");
  if (spec.Commutes(unknown, unknown)) {
    out.push_back({Severity::kWarning, "spec-soundness", type->name(),
                   unknown.method, unknown.method,
                   "unknown methods commute with themselves; specs "
                   "should treat unregistered methods conservatively "
                   "(conflict)"});
  }
  for (const Invocation& inv : invs) {
    if ((spec.Commutes(unknown, inv) || spec.Commutes(inv, unknown)) &&
        !dedup.Seen("unk", inv.method, unknown.method)) {
      out.push_back({Severity::kWarning, "spec-soundness", type->name(),
                     inv.method, unknown.method,
                     "commutes with an unknown method (probe " +
                         inv.ToString() +
                         "); unregistered methods must conflict"});
    }
  }
  return out;
}

}  // namespace oodb::analysis
