#include "analysis/lock_conformance.h"

#include <chrono>
#include <set>
#include <string>

#include "cc/lock_manager.h"
#include "model/transaction_system.h"

namespace oodb::analysis {

std::vector<Diagnostic> CheckLockConformance(
    const TypeCorpus& corpus, const LockConformanceOptions& options) {
  std::vector<Diagnostic> out;
  const ObjectType* type = corpus.type;
  const CommutativitySpec& reference =
      options.reference ? *options.reference : type->commutativity();

  TransactionSystem ts;
  const ObjectId obj = ts.AddObject(type, "LintProbe");
  const ActionId t1 = ts.BeginTopLevel("LintHolder");
  const ActionId t2 = ts.BeginTopLevel("LintRequester");

  LockManagerOptions lm_options;
  lm_options.wait_timeout = std::chrono::milliseconds(0);
  LockManager lm(&ts, lm_options);

  // One diagnostic per (method pair, kind); the first witnessing
  // invocation pair carries the detail.
  std::set<std::string> seen;
  auto Report = [&](const std::string& kind, Severity severity,
                    const Invocation& a, const Invocation& b,
                    const std::string& message) {
    if (!seen.insert(kind + "|" + a.method + "|" + b.method).second) return;
    out.push_back({severity, "lock-conformance", type->name(), a.method,
                   b.method, message});
  };

  const std::vector<Invocation> invs = corpus.Invocations();
  for (const Invocation& a : invs) {
    for (const Invocation& b : invs) {
      const bool expected = reference.Commutes(a, b);

      // Commutativity semantics: admit iff the pair commutes.
      Status held = lm.Acquire(obj, type, a, t1, t1);
      if (!held.ok()) {
        Report("held", Severity::kError, a, b,
               "could not seed the probe lock on an empty table: " +
                   held.ToString());
        lm.ReleaseAllHeldBy(t1);
        continue;
      }
      const bool admitted = lm.Acquire(obj, type, b, t2, t2).ok();
      lm.ReleaseAllHeldBy(t2);
      if (admitted && !expected) {
        Report("admit", Severity::kError, a, b,
               "lock table admits " + b.ToString() + " while " +
                   a.ToString() +
                   " is held, but the specification says they conflict "
                   "— schedules stop being oo-serializable");
      } else if (!admitted && expected) {
        Report("block", Severity::kWarning, a, b,
               "lock table blocks " + b.ToString() + " although " +
                   a.ToString() +
                   " commutes with it per the specification — "
                   "concurrency the spec allows is lost");
      }

      // Sphere rule: the holder itself never blocks (t1 re-requesting).
      if (!lm.Acquire(obj, type, b, t1, t1).ok()) {
        Report("sphere", Severity::kError, a, b,
               "holder blocked on its own sphere: " + b.ToString() +
                   " from the same action that holds " + a.ToString());
      }
      lm.ReleaseAllHeldBy(t1);

      // Exclusive strawman held: everything outside the sphere blocks.
      held = lm.Acquire(obj, type, a, t1, t1, LockSemantics::kExclusive);
      if (held.ok()) {
        if (lm.Acquire(obj, type, b, t2, t2).ok()) {
          Report("excl-held", Severity::kError, a, b,
                 "an exclusive lock on " + a.ToString() +
                     " failed to block " + b.ToString());
        }
        lm.ReleaseAllHeldBy(t2);
      }
      lm.ReleaseAllHeldBy(t1);

      // Exclusive request against a held commutativity lock.
      held = lm.Acquire(obj, type, a, t1, t1);
      if (held.ok()) {
        if (lm.Acquire(obj, type, b, t2, t2, LockSemantics::kExclusive)
                .ok()) {
          Report("excl-req", Severity::kError, a, b,
                 "an exclusive request for " + b.ToString() +
                     " was admitted although " + a.ToString() +
                     " is held by another transaction");
        }
        lm.ReleaseAllHeldBy(t2);
      }
      lm.ReleaseAllHeldBy(t1);
    }
  }
  return out;
}

}  // namespace oodb::analysis
