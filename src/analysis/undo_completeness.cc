#include "analysis/undo_completeness.h"

#include <unordered_map>
#include <unordered_set>

namespace oodb::analysis {

std::vector<Diagnostic> CheckUndoCompleteness(const TypeCorpus& corpus) {
  std::vector<Diagnostic> out;
  const std::string& type = corpus.type->name();

  std::unordered_map<std::string, const MethodCorpus*> by_name;
  std::unordered_map<std::string, std::string> comp_of;
  for (const MethodCorpus& m : corpus.methods) {
    by_name[m.method] = &m;
    for (const std::string& comp : m.compensations) {
      comp_of.emplace(comp, m.method);
    }
  }

  for (const MethodCorpus& m : corpus.methods) {
    if (!m.has_traits) continue;  // call-graph flags unaudited methods

    if (m.observer) {
      if (!m.compensations.empty()) {
        out.push_back({Severity::kWarning, "undo-completeness", type,
                       m.method, "",
                       "observer declares compensating invocations; an "
                       "observer has nothing to undo — either the "
                       "observer flag or the compensation list is wrong"});
      }
      if (m.undo_free) {
        out.push_back({Severity::kNote, "undo-completeness", type,
                       m.method, "",
                       "undo_free on an observer is redundant"});
      }
      continue;
    }

    // Mutator: needs a declared logical undo, or an explicit waiver.
    if (m.compensations.empty() && !m.undo_free) {
      auto owner = comp_of.find(m.method);
      if (owner != comp_of.end()) {
        // Undo actions are never themselves undone (recovery replays
        // them as CLRs), so a compensation-only mutator is by design —
        // but a forward call to it would still be unrecoverable.
        out.push_back({Severity::kNote, "undo-completeness", type,
                       m.method, owner->second,
                       "mutator declares no compensation but is the "
                       "declared compensation of '" + owner->second +
                           "'; forward calls to it are not undoable"});
      } else {
        out.push_back({Severity::kError, "undo-completeness", type,
                       m.method, "",
                       "mutator declares no compensating invocation and "
                       "is not undo_free: a loser transaction's effect "
                       "would survive crash recovery"});
      }
    } else if (m.compensations.empty() && m.undo_free) {
      out.push_back({Severity::kNote, "undo-completeness", type,
                     m.method, "",
                     "mutator is declared fully undo_free (never "
                     "registers a compensation)"});
    }

    for (const std::string& comp : m.compensations) {
      auto it = by_name.find(comp);
      if (it == by_name.end()) {
        out.push_back({Severity::kError, "undo-completeness", type,
                       m.method, comp,
                       "declared compensation '" + comp +
                           "' is not a registered method of " + type});
        continue;
      }
      if (it->second->has_traits && it->second->observer) {
        out.push_back({Severity::kError, "undo-completeness", type,
                       m.method, comp,
                       "declared compensation '" + comp +
                           "' is an observer; it cannot restore state"});
      }
    }
  }
  return out;
}

}  // namespace oodb::analysis
