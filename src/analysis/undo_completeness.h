// Pass — undo completeness.
//
// Crash recovery undoes a loser transaction by re-running the
// compensating invocations its completed actions registered (logical
// undo; see storage/recovery.h). A mutator that never registers one is
// a durability hole: its effect survives a crash even when its
// transaction lost. The schema makes the intent auditable through two
// MethodTraits fields —
//
//   * compensations: the methods the body may pass to SetCompensation;
//   * undo_free: every completion path that skips SetCompensation
//     leaves the object unchanged (removing an absent key, say), so a
//     logged record without a compensation is safe to skip in undo.
//
// The pass checks, per declared method:
//
//   * a mutator that declares neither compensations nor undo_free is an
//     error — recovery would log "cannot undo" and keep the effect —
//     unless it is itself some method's declared compensation: undo
//     actions are never undone (recovery replays them as CLRs), so a
//     compensation-only mutator is by design and only noted;
//   * a declared compensation must name a registered method of the same
//     type (error), and that method must itself be a mutator — an
//     observer cannot restore anything (error);
//   * an observer declaring compensations (warning) or undo_free (note)
//     is contradicting its own classification;
//   * a mutator relying on undo_free alone is reported as a note, so
//     intentionally un-undoable methods stay visible in review.
//
// Methods with no declared traits are skipped here; the call-graph pass
// already flags them as unaudited.

#pragma once

#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostics.h"

namespace oodb::analysis {

std::vector<Diagnostic> CheckUndoCompleteness(const TypeCorpus& corpus);

}  // namespace oodb::analysis
