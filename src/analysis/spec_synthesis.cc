#include "analysis/spec_synthesis.h"

#include <utility>

namespace oodb::analysis {

namespace {

/// "different-param(0)" / "same-param(1)" / bare kind name.
std::string KindLabel(const MethodPairEntry& e) {
  std::string label = EntryKindName(e.kind);
  switch (e.kind) {
    case EntryKind::kDifferentParam:
    case EntryKind::kSameParam:
    case EntryKind::kDifferentParamOrIdentical:
      label += "(" + std::to_string(e.param_index) + ")";
      break;
    default:
      break;
  }
  return label;
}

/// Type name reduced to a C++ identifier fragment ("EscrowAccount").
std::string Identifier(const std::string& name) {
  std::string out;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      out += c;
    }
  }
  return out.empty() ? "Type" : out;
}

}  // namespace

SynthesizedSpec::SynthesizedSpec(InferredMatrix matrix)
    : matrix_(std::move(matrix)), memo_(CommutativityMemo::kInvocationPair) {
  for (const MethodPairEntry& e : matrix_.entries) {
    if (e.kind == EntryKind::kDelegate && matrix_.type != nullptr &&
        matrix_.type->commutativity().memo() == CommutativityMemo::kNone) {
      memo_ = CommutativityMemo::kNone;
      break;
    }
  }
}

bool SynthesizedSpec::Commutes(const Invocation& a,
                               const Invocation& b) const {
  return matrix_.Commutes(a, b);
}

void InferenceStats::Add(const InferredMatrix& matrix) {
  ++types;
  if (matrix.probed) ++types_probed;
  pairs_probed += matrix.pairs_probed;
  probe_runs += matrix.probe_runs;
  vacuous_runs += matrix.vacuous_runs;
  entries_tightened += matrix.gained_pairs();
  entries_unsound += matrix.unsound_pairs();
  probe_ns += matrix.probe_ns;
}

std::vector<Diagnostic> CompareWithHand(const InferredMatrix& matrix) {
  std::vector<Diagnostic> out;
  auto make = [&matrix](Severity severity, const std::string& a,
                        const std::string& b, std::string message) {
    Diagnostic d;
    d.severity = severity;
    d.pass = "inference";
    d.type_name = matrix.type_name;
    d.method_a = a;
    d.method_b = b;
    d.message = std::move(message);
    return d;
  };

  for (const ObserverViolation& v : matrix.observer_violations) {
    out.push_back(make(
        Severity::kError, v.method, "",
        "declared observer mutated probe state '" + v.state_class + "'"));
  }
  for (const MethodPairEntry& e : matrix.entries) {
    if (e.unsound > 0) {
      out.push_back(make(
          Severity::kError, e.method_a, e.method_b,
          "hand spec commutes but both-orders probing diverged on " +
              std::to_string(e.unsound) + " combination(s); " +
              e.unsound_witness));
    }
    if (e.gained > 0) {
      out.push_back(make(
          Severity::kNote, e.method_a, e.method_b,
          "hand spec conflicts on " + std::to_string(e.gained) +
              " combination(s) the inference proves commute (" +
              KindLabel(e) + ") — lost concurrency"));
    }
  }
  if (!matrix.probed && matrix.type != nullptr && matrix.type->primitive()) {
    out.push_back(make(
        Severity::kNote, "", "",
        "primitive type declares no probe traits; inference fell back to "
        "declared evidence"));
  }
  return out;
}

std::string RenderInferredText(const InferredMatrix& matrix) {
  std::string out = "type " + matrix.type_name;
  if (matrix.probed) {
    out += " [probed]: " + std::to_string(matrix.pairs_probed) +
           " invocation pairs, " + std::to_string(matrix.probe_runs) +
           " runs, " + std::to_string(matrix.vacuous_runs) + " vacuous";
  } else {
    out += " [declared]";
  }
  out += "\n";
  for (const MethodPairEntry& e : matrix.entries) {
    out += "  " + e.method_a + "/" + e.method_b + ": " + KindLabel(e);
    if (e.source == EntrySource::kObserver) out += " [deep-observer]";
    if (e.gained > 0) {
      out += " (gained " + std::to_string(e.gained) + ")";
    }
    if (e.unsound > 0) {
      out += " !! unsound on " + std::to_string(e.unsound) +
             " combination(s): " + e.unsound_witness;
    }
    out += "\n";
  }
  for (const ObserverViolation& v : matrix.observer_violations) {
    out += "  !! observer '" + v.method + "' mutated state '" +
           v.state_class + "'\n";
  }
  return out;
}

std::string RenderInferredJson(const InferredMatrix& matrix) {
  std::string out = "{\"type\":\"" + JsonEscape(matrix.type_name) + "\",";
  out += "\"probed\":";
  out += matrix.probed ? "true" : "false";
  out += ",\"entries\":[";
  for (size_t i = 0; i < matrix.entries.size(); ++i) {
    const MethodPairEntry& e = matrix.entries[i];
    if (i > 0) out += ",";
    out += "{\"method_a\":\"" + JsonEscape(e.method_a) + "\"," +
           "\"method_b\":\"" + JsonEscape(e.method_b) + "\"," +
           "\"kind\":\"" + EntryKindName(e.kind) + "\",";
    switch (e.kind) {
      case EntryKind::kDifferentParam:
      case EntryKind::kSameParam:
      case EntryKind::kDifferentParamOrIdentical:
        out += "\"param_index\":" + std::to_string(e.param_index) + ",";
        break;
      default:
        break;
    }
    out += std::string("\"source\":\"") +
           (e.source == EntrySource::kProbed
                ? "probed"
                : e.source == EntrySource::kObserver ? "observer"
                                                     : "declared") +
           "\",";
    out += "\"gained\":" + std::to_string(e.gained) + ",";
    out += "\"unsound\":" + std::to_string(e.unsound);
    if (e.unsound > 0) {
      out += ",\"witness\":\"" + JsonEscape(e.unsound_witness) + "\"";
    }
    out += "}";
  }
  out += "],\"observer_violations\":[";
  for (size_t i = 0; i < matrix.observer_violations.size(); ++i) {
    const ObserverViolation& v = matrix.observer_violations[i];
    if (i > 0) out += ",";
    out += "{\"method\":\"" + JsonEscape(v.method) + "\"," +
           "\"state\":\"" + JsonEscape(v.state_class) + "\"}";
  }
  out += "],\"pairs_probed\":" + std::to_string(matrix.pairs_probed) +
         ",\"probe_runs\":" + std::to_string(matrix.probe_runs) +
         ",\"vacuous_runs\":" + std::to_string(matrix.vacuous_runs) +
         ",\"probe_ns\":" + std::to_string(matrix.probe_ns) + "}";
  return out;
}

std::string RenderInferredCpp(const InferredMatrix& matrix) {
  const std::string ident = Identifier(matrix.type_name);
  std::string out =
      "// Inferred commutativity for " + matrix.type_name +
      " — generated by oodb_infer.\n"
      "std::unique_ptr<oodb::CommutativitySpec> MakeInferred" + ident +
      "Spec() {\n"
      "  auto spec = std::make_unique<oodb::PredicateCommutativity>();\n";
  for (const MethodPairEntry& e : matrix.entries) {
    const std::string pair =
        "\"" + e.method_a + "\", \"" + e.method_b + "\"";
    switch (e.kind) {
      case EntryKind::kCommutes:
        out += "  spec->SetCommutes(" + pair + ");\n";
        break;
      case EntryKind::kConflicts:
        out += "  spec->SetConflicts(" + pair + ");\n";
        break;
      case EntryKind::kDifferentParam:
        out += "  spec->SetPredicate(" + pair +
               ", oodb::PredicateCommutativity::DifferentParam(" +
               std::to_string(e.param_index) + "));\n";
        break;
      case EntryKind::kSameParam:
        out += "  spec->SetPredicate(" + pair +
               ", oodb::PredicateCommutativity::SameParam(" +
               std::to_string(e.param_index) + "));\n";
        break;
      case EntryKind::kDifferentParamOrIdentical:
        out += "  spec->SetPredicate(" + pair +
               ", oodb::PredicateCommutativity::DifferentParamOrIdentical(" +
               std::to_string(e.param_index) + "));\n";
        break;
      case EntryKind::kEvidence:
        out += "  // " + e.method_a + "/" + e.method_b +
               ": no closed shape fits the evidence; conservative here "
               "(see oodb_infer --json for the witnessed table).\n";
        out += "  spec->SetConflicts(" + pair + ");\n";
        break;
      case EntryKind::kDelegate:
        out += "  // " + e.method_a + "/" + e.method_b +
               ": not probed — keep the audited hand-spec entry.\n";
        break;
    }
  }
  out += "  return spec;\n}\n";
  return out;
}

}  // namespace oodb::analysis
