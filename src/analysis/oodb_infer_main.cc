// oodb_infer: commutativity-inference driver.
//
//   oodb_infer [--json|--cpp] [--diff] [--metrics-json=PATH] [schema ...]
//
// Schemas: bank, document, encyclopedia, containers (default: all
// four; "containers" registers the queue, directory, escrow-account,
// page, B+-tree, and hash-index modules into one database). For each
// registered type the inference engine synthesizes the tightest matrix
// its evidence supports (see commutativity_inference.h) and renders it
// as text (byte-stable, CI-diffable against tests/golden/infer_*.txt),
// JSON (--json, with probe counters and timings), or a compilable C++
// table (--cpp). --diff restricts the text to entries that disagree
// with the shipped spec. Exit status: 0 sound, 2 when probing refuted a
// hand entry or an observer mutated a probe state.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/commutativity_inference.h"
#include "analysis/spec_synthesis.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"
#include "containers/bptree.h"
#include "containers/directory.h"
#include "containers/escrow.h"
#include "containers/fifo_queue.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "obs/metrics.h"

namespace {

using oodb::analysis::CompareWithHand;
using oodb::analysis::InferredMatrix;
using oodb::analysis::InferType;
using oodb::analysis::MethodPairEntry;

bool RegisterSchema(const std::string& name, oodb::Database* db) {
  if (name == "bank") {
    oodb::Bank::RegisterMethods(db, oodb::BankSemantics::kEscrow);
    oodb::Bank::RegisterMethods(db, oodb::BankSemantics::kNameOnly);
    oodb::Bank::RegisterMethods(db, oodb::BankSemantics::kReadWrite);
  } else if (name == "document") {
    oodb::Document::RegisterMethods(db);
  } else if (name == "encyclopedia") {
    oodb::Encyclopedia::RegisterMethods(db);
  } else if (name == "containers") {
    oodb::RegisterQueueMethods(db);
    oodb::RegisterDirectoryMethods(db);
    oodb::RegisterAccountMethods(db, oodb::EscrowAccountType());
    oodb::RegisterAccountMethods(db, oodb::NameOnlyAccountType());
    oodb::RegisterAccountMethods(db, oodb::RWAccountType());
    oodb::RegisterPageMethods(db);
    oodb::BpTree::RegisterMethods(db);
    oodb::HashIndex::RegisterMethods(db);
  } else {
    return false;
  }
  return true;
}

/// --diff: only the entries that disagree with the shipped spec.
std::string RenderDiff(const InferredMatrix& matrix) {
  std::string out;
  for (const MethodPairEntry& e : matrix.entries) {
    if (e.gained == 0 && e.unsound == 0) continue;
    if (out.empty()) out = "type " + matrix.type_name + "\n";
    out += "  " + e.method_a + "/" + e.method_b + ": ";
    if (e.unsound > 0) {
      out += "UNSOUND hand entry (" + std::to_string(e.unsound) +
             " refuted combination(s)): " + e.unsound_witness + "\n";
    } else {
      out += "hand spec loses " + std::to_string(e.gained) +
             " commuting combination(s)\n";
    }
  }
  for (const auto& v : matrix.observer_violations) {
    if (out.empty()) out = "type " + matrix.type_name + "\n";
    out += "  observer '" + v.method + "' mutated state '" + v.state_class +
           "'\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool cpp = false;
  bool diff = false;
  std::string metrics_path;
  std::vector<std::string> schemas;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--cpp") {
      cpp = true;
    } else if (arg == "--diff") {
      diff = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: oodb_infer [--json|--cpp] [--diff] "
                  "[--metrics-json=PATH] [schema ...]\n"
                  "schemas: bank document encyclopedia containers "
                  "(default: all)\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "oodb_infer: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      schemas.push_back(arg);
    }
  }
  if (schemas.empty()) {
    schemas = {"bank", "containers", "document", "encyclopedia"};
  }

  int exit_code = 0;
  oodb::analysis::InferenceStats stats;
  std::string json_out = "[";
  for (size_t s = 0; s < schemas.size(); ++s) {
    oodb::Database db;
    if (!RegisterSchema(schemas[s], &db)) {
      std::fprintf(stderr, "oodb_infer: unknown schema '%s'\n",
                   schemas[s].c_str());
      return 2;
    }
    if (json) {
      if (s > 0) json_out += ",";
      json_out += "{\"schema\":\"" +
                  oodb::analysis::JsonEscape(schemas[s]) + "\",\"types\":[";
    } else {
      std::printf("== oodb_infer: schema '%s' ==\n", schemas[s].c_str());
    }
    bool first_type = true;
    for (const oodb::ObjectType* type : db.registry().Types()) {
      const InferredMatrix matrix = InferType(type, db.registry());
      stats.Add(matrix);
      if (matrix.unsound_pairs() > 0 ||
          !matrix.observer_violations.empty()) {
        exit_code = 2;
      }
      if (json) {
        if (!first_type) json_out += ",";
        json_out += oodb::analysis::RenderInferredJson(matrix);
      } else if (cpp) {
        std::fputs(oodb::analysis::RenderInferredCpp(matrix).c_str(),
                   stdout);
      } else if (diff) {
        std::fputs(RenderDiff(matrix).c_str(), stdout);
      } else {
        std::fputs(oodb::analysis::RenderInferredText(matrix).c_str(),
                   stdout);
      }
      first_type = false;
    }
    if (json) json_out += "]}";
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  if (!metrics_path.empty()) {
    oodb::MetricsRegistry metrics;
    metrics.GetCounter("infer.types")->Increment(stats.types);
    metrics.GetCounter("infer.types_probed")->Increment(stats.types_probed);
    metrics.GetCounter("infer.pairs_probed")->Increment(stats.pairs_probed);
    metrics.GetCounter("infer.probe_runs")->Increment(stats.probe_runs);
    metrics.GetCounter("infer.vacuous_runs")->Increment(stats.vacuous_runs);
    metrics.GetCounter("infer.entries_tightened")
        ->Increment(stats.entries_tightened);
    metrics.GetCounter("infer.entries_unsound")
        ->Increment(stats.entries_unsound);
    metrics.GetCounter("infer.probe_ns")->Increment(stats.probe_ns);
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "oodb_infer: could not open '%s'\n",
                   metrics_path.c_str());
      return 2;
    }
    std::fputs(metrics.JsonSnapshot().c_str(), f);
    std::fclose(f);
  }
  return exit_code;
}
