#include "analysis/call_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "model/object_type.h"

namespace oodb::analysis {

namespace {

using NodeKey = std::pair<std::string, std::string>;  // (type, method)

}  // namespace

CallGraphResult AnalyzeCallGraph(const MethodRegistry& registry) {
  CallGraphResult result;
  std::map<std::string, const ObjectType*> types_by_name;
  for (const ObjectType* type : registry.Types()) {
    types_by_name.emplace(type->name(), type);
  }

  // Collect nodes and validate each declared edge.
  std::map<NodeKey, std::vector<CallTarget>> edges;
  for (const ObjectType* type : registry.Types()) {
    for (const std::string& method : registry.MethodsOf(type)) {
      const MethodTraits* traits = registry.Traits(type, method);
      const bool has_impl = registry.Find(type, method) != nullptr;
      if (!has_impl) {
        result.diagnostics.push_back(
            {Severity::kWarning, "call-graph", type->name(), method, "",
             "traits declared for a method with no registered "
             "implementation — stale schema entry"});
      }
      if (traits == nullptr || !traits->Declared()) {
        result.diagnostics.push_back(
            {Severity::kWarning, "call-graph", type->name(), method, "",
             "registered method has no declared traits; the schema "
             "audit cannot see its call targets or probe its "
             "parameters"});
        edges[{type->name(), method}];
        continue;
      }
      std::vector<CallTarget> calls = traits->calls;
      std::sort(calls.begin(), calls.end());
      calls.erase(std::unique(calls.begin(), calls.end()), calls.end());
      if (type->primitive() && !calls.empty()) {
        result.diagnostics.push_back(
            {Severity::kError, "call-graph", type->name(), method, "",
             "primitive type declares outgoing calls (first: " +
                 calls.front().type + "." + calls.front().method +
                 ") — Def 3 requires that its methods call no other "
                 "actions"});
      }
      for (const CallTarget& target : calls) {
        auto it = types_by_name.find(target.type);
        if (it == types_by_name.end()) {
          result.diagnostics.push_back(
              {Severity::kError, "call-graph", type->name(), method, "",
               "call target " + target.type + "." + target.method +
                   ": type is not registered in this schema"});
          continue;
        }
        const std::vector<std::string> methods =
            registry.MethodsOf(it->second);
        if (std::find(methods.begin(), methods.end(), target.method) ==
            methods.end()) {
          result.diagnostics.push_back(
              {Severity::kError, "call-graph", type->name(), method, "",
               "call target " + target.type + "." + target.method +
                   ": method is not registered on that type"});
        }
      }
      edges[{type->name(), method}] = std::move(calls);
    }
  }

  // Def 5 sites: BFS over the type-level graph from every node; a
  // reachable callee on the receiver's own type makes the node a
  // virtual-object site. Parent links give a witness path.
  for (auto& [key, calls] : edges) {
    CallGraphNode node;
    node.type_name = key.first;
    node.method = key.second;
    node.calls = calls;

    std::map<NodeKey, NodeKey> parent;
    std::vector<NodeKey> frontier;
    std::set<NodeKey> visited;
    NodeKey hit{"", ""};
    for (const CallTarget& t : calls) {
      NodeKey next{t.type, t.method};
      if (visited.insert(next).second) {
        parent[next] = key;
        frontier.push_back(next);
      }
    }
    while (!frontier.empty() && hit.first.empty()) {
      std::vector<NodeKey> next_frontier;
      for (const NodeKey& at : frontier) {
        if (at.first == key.first) {
          hit = at;
          break;
        }
        auto it = edges.find(at);
        if (it == edges.end()) continue;
        for (const CallTarget& t : it->second) {
          NodeKey next{t.type, t.method};
          if (visited.insert(next).second) {
            parent[next] = at;
            next_frontier.push_back(next);
          }
        }
      }
      frontier = std::move(next_frontier);
    }
    if (!hit.first.empty()) {
      node.def5_site = true;
      std::vector<NodeKey> path;
      for (NodeKey at = hit; at != key; at = parent.at(at)) {
        path.push_back(at);
      }
      path.push_back(key);
      std::reverse(path.begin(), path.end());
      if (path.size() == 1) path.push_back(hit);  // direct self-call
      for (const NodeKey& at : path) {
        if (!node.def5_path.empty()) node.def5_path += " -> ";
        node.def5_path += at.first + "." + at.second;
      }
      result.diagnostics.push_back(
          {Severity::kNote, "call-graph", key.first, key.second, "",
           "Def 5 virtual-object site: an execution can reach further "
           "executions on its own receiver type (" + node.def5_path +
               "); the system extension introduces a virtual object "
               "here"});
    }
    result.nodes.push_back(std::move(node));
  }
  return result;
}

}  // namespace oodb::analysis
