// Pass 1 — spec soundness.
//
// Drives the type's CommutativitySpec over every ordered pair of corpus
// invocations and checks the Def 9 ground rules:
//
//   * symmetry: Commutes(a, b) == Commutes(b, a) (asymmetry is an
//     error — the dependency relation would depend on enumeration
//     order);
//   * conservatism: an unknown method must conflict with everything
//     (specs are open-world; treating the unknown as commuting hides
//     conflicts of future methods);
//   * for primitive types (Def 3), a cross-check against the
//     conventional page read/write classification derived from the
//     declared observer flags: two observers that conflict lose
//     concurrency the zero layer would have allowed (warning); a pair
//     that commutes although a mutator is involved is the whole point
//     of semantic concurrency control and is reported as a note.

#pragma once

#include <vector>

#include "analysis/corpus.h"
#include "analysis/diagnostics.h"

namespace oodb::analysis {

std::vector<Diagnostic> CheckSpecSoundness(const TypeCorpus& corpus);

}  // namespace oodb::analysis
