// oodb_lint: static spec-and-schema analyzer.
//
//   oodb_lint [--json] [--notes] [--metrics-json=PATH] [schema ...]
//
// Schemas: bank, document, encyclopedia (default: all three). Each is
// registered into a fresh Database and audited without running any
// workload. Exit status: 0 clean, 1 warnings, 2 errors.
// --metrics-json writes aggregate lint.errors / lint.warnings /
// lint.notes counters (summed over the audited schemas) as a
// MetricsRegistry snapshot.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"
#include "obs/metrics.h"

namespace {

using oodb::analysis::AnalysisReport;
using oodb::analysis::AnalyzeSchema;

AnalysisReport RunSchema(const std::string& name) {
  oodb::Database db;
  if (name == "bank") {
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kEscrow);
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kNameOnly);
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kReadWrite);
  } else if (name == "document") {
    oodb::Document::RegisterMethods(&db);
  } else if (name == "encyclopedia") {
    oodb::Encyclopedia::RegisterMethods(&db);
  } else {
    std::fprintf(stderr, "oodb_lint: unknown schema '%s'\n", name.c_str());
    std::exit(2);
  }
  return AnalyzeSchema(name, db);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool notes = false;
  std::string metrics_path;
  std::vector<std::string> schemas;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--notes") {
      notes = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::string("--metrics-json=").size());
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: oodb_lint [--json] [--notes] "
                  "[--metrics-json=PATH] [schema ...]\n"
                  "schemas: bank document encyclopedia (default: all)\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "oodb_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      schemas.push_back(arg);
    }
  }
  if (schemas.empty()) schemas = {"bank", "document", "encyclopedia"};

  int exit_code = 0;
  oodb::MetricsRegistry metrics;
  std::string json_out = "[";
  for (size_t i = 0; i < schemas.size(); ++i) {
    const AnalysisReport report = RunSchema(schemas[i]);
    metrics.GetCounter("lint.errors")->Increment(report.errors());
    metrics.GetCounter("lint.warnings")->Increment(report.warnings());
    metrics.GetCounter("lint.notes")->Increment(report.notes());
    metrics.GetCounter("lint.schemas")->Increment();
    metrics.GetCounter("infer.pairs_probed")
        ->Increment(report.inference.pairs_probed);
    metrics.GetCounter("infer.probe_runs")
        ->Increment(report.inference.probe_runs);
    metrics.GetCounter("infer.entries_tightened")
        ->Increment(report.inference.entries_tightened);
    metrics.GetCounter("infer.entries_unsound")
        ->Increment(report.inference.entries_unsound);
    metrics.GetCounter("infer.probe_ns")
        ->Increment(report.inference.probe_ns);
    if (json) {
      if (i > 0) json_out += ",";
      json_out += oodb::analysis::RenderJson(report);
    } else {
      std::fputs(oodb::analysis::RenderText(report, notes).c_str(),
                 stdout);
    }
    if (report.errors() > 0) {
      exit_code = 2;
    } else if (report.warnings() > 0 && exit_code == 0) {
      exit_code = 1;
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  if (!metrics_path.empty()) {
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "oodb_lint: could not open '%s'\n",
                   metrics_path.c_str());
      return 2;
    }
    std::fputs(metrics.JsonSnapshot().c_str(), f);
    std::fclose(f);
  }
  return exit_code;
}
