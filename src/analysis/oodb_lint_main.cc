// oodb_lint: static spec-and-schema analyzer.
//
//   oodb_lint [--json] [--notes] [schema ...]
//
// Schemas: bank, document, encyclopedia (default: all three). Each is
// registered into a fresh Database and audited without running any
// workload. Exit status: 0 clean, 1 warnings, 2 errors.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"

namespace {

using oodb::analysis::AnalysisReport;
using oodb::analysis::AnalyzeSchema;

AnalysisReport RunSchema(const std::string& name) {
  oodb::Database db;
  if (name == "bank") {
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kEscrow);
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kNameOnly);
    oodb::Bank::RegisterMethods(&db, oodb::BankSemantics::kReadWrite);
  } else if (name == "document") {
    oodb::Document::RegisterMethods(&db);
  } else if (name == "encyclopedia") {
    oodb::Encyclopedia::RegisterMethods(&db);
  } else {
    std::fprintf(stderr, "oodb_lint: unknown schema '%s'\n", name.c_str());
    std::exit(2);
  }
  return AnalyzeSchema(name, db);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool notes = false;
  std::vector<std::string> schemas;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--notes") {
      notes = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: oodb_lint [--json] [--notes] [schema ...]\n"
                  "schemas: bank document encyclopedia (default: all)\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "oodb_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      schemas.push_back(arg);
    }
  }
  if (schemas.empty()) schemas = {"bank", "document", "encyclopedia"};

  int exit_code = 0;
  std::string json_out = "[";
  for (size_t i = 0; i < schemas.size(); ++i) {
    const AnalysisReport report = RunSchema(schemas[i]);
    if (json) {
      if (i > 0) json_out += ",";
      json_out += oodb::analysis::RenderJson(report);
    } else {
      std::fputs(oodb::analysis::RenderText(report, notes).c_str(),
                 stdout);
    }
    if (report.errors() > 0) {
      exit_code = 2;
    } else if (report.warnings() > 0 && exit_code == 0) {
      exit_code = 1;
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return exit_code;
}
