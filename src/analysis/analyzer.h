// The analyzer: runs every lint pass over one schema (a Database's
// registered types, traits, and specs) and folds the findings into a
// single severity-ranked report with text and JSON renderings.
//
// The report is deterministic: types in name order, diagnostics sorted
// by (type, method pair), so two runs over the same schema produce
// byte-identical output — a requirement for CI gating and golden
// output.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/diagnostics.h"
#include "analysis/lock_conformance.h"
#include "analysis/memo_honesty.h"
#include "analysis/spec_synthesis.h"
#include "cc/database.h"

namespace oodb::analysis {

struct AnalyzerOptions {
  HonestyOptions honesty;
  /// Per-type reference specs for the lock-conformance pass, keyed by
  /// type name (tests seed divergence here; empty in production).
  std::map<std::string, const CommutativitySpec*> lock_references;
  /// Skip the lock-conformance pass (it spins up a LockManager per
  /// type; value-level-only callers can opt out).
  bool lock_conformance = true;
  /// Run the commutativity-inference pass (pass 6): probe primitive
  /// types with declared TypeProbeTraits, classify the rest over
  /// declared evidence, and compare each inferred matrix against the
  /// shipped spec (see spec_synthesis.h).
  bool inference = true;
  InferenceOptions inference_options;
};

/// Per-type summary: the potential-conflict footprint of the corpus.
struct TypeSummary {
  std::string type_name;
  size_t methods = 0;
  size_t invocations = 0;
  size_t pairs = 0;             ///< unordered invocation pairs probed
  size_t conflicting_pairs = 0;
  size_t commuting_pairs = 0;
};

struct AnalysisReport {
  std::string schema;
  std::vector<TypeSummary> types;        ///< name order
  std::vector<Diagnostic> diagnostics;   ///< sorted, all severities
  CallGraphResult call_graph;
  InferenceStats inference;              ///< aggregated over all types

  size_t CountBySeverity(Severity severity) const;
  size_t errors() const { return CountBySeverity(Severity::kError); }
  size_t warnings() const { return CountBySeverity(Severity::kWarning); }
  size_t notes() const { return CountBySeverity(Severity::kNote); }
  /// Errors and warnings gate; notes do not.
  bool Clean() const { return errors() == 0 && warnings() == 0; }
};

/// Runs all passes over every type registered in `db`.
AnalysisReport AnalyzeSchema(const std::string& schema_name,
                             const Database& db,
                             const AnalyzerOptions& options = {});

/// Human-readable report. Notes are included only when `include_notes`.
std::string RenderText(const AnalysisReport& report, bool include_notes);

/// Machine-readable report (always includes notes).
std::string RenderJson(const AnalysisReport& report);

}  // namespace oodb::analysis
