# Empty dependencies file for oodb_apps.
# This may be replaced when dependencies are built.
