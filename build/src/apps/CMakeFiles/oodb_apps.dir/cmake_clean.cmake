file(REMOVE_RECURSE
  "CMakeFiles/oodb_apps.dir/bank.cc.o"
  "CMakeFiles/oodb_apps.dir/bank.cc.o.d"
  "CMakeFiles/oodb_apps.dir/document.cc.o"
  "CMakeFiles/oodb_apps.dir/document.cc.o.d"
  "CMakeFiles/oodb_apps.dir/encyclopedia.cc.o"
  "CMakeFiles/oodb_apps.dir/encyclopedia.cc.o.d"
  "liboodb_apps.a"
  "liboodb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
