file(REMOVE_RECURSE
  "liboodb_apps.a"
)
