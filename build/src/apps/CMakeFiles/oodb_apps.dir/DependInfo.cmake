
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/bank.cc" "src/apps/CMakeFiles/oodb_apps.dir/bank.cc.o" "gcc" "src/apps/CMakeFiles/oodb_apps.dir/bank.cc.o.d"
  "/root/repo/src/apps/document.cc" "src/apps/CMakeFiles/oodb_apps.dir/document.cc.o" "gcc" "src/apps/CMakeFiles/oodb_apps.dir/document.cc.o.d"
  "/root/repo/src/apps/encyclopedia.cc" "src/apps/CMakeFiles/oodb_apps.dir/encyclopedia.cc.o" "gcc" "src/apps/CMakeFiles/oodb_apps.dir/encyclopedia.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/containers/CMakeFiles/oodb_containers.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/oodb_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oodb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
