# Empty dependencies file for oodb_storage.
# This may be replaced when dependencies are built.
