file(REMOVE_RECURSE
  "liboodb_storage.a"
)
