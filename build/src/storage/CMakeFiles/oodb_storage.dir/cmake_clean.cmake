file(REMOVE_RECURSE
  "CMakeFiles/oodb_storage.dir/page.cc.o"
  "CMakeFiles/oodb_storage.dir/page.cc.o.d"
  "liboodb_storage.a"
  "liboodb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
