file(REMOVE_RECURSE
  "liboodb_cc.a"
)
