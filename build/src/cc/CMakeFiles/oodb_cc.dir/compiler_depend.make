# Empty compiler generated dependencies file for oodb_cc.
# This may be replaced when dependencies are built.
