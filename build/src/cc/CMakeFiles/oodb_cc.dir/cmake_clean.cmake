file(REMOVE_RECURSE
  "CMakeFiles/oodb_cc.dir/database.cc.o"
  "CMakeFiles/oodb_cc.dir/database.cc.o.d"
  "CMakeFiles/oodb_cc.dir/lock_manager.cc.o"
  "CMakeFiles/oodb_cc.dir/lock_manager.cc.o.d"
  "CMakeFiles/oodb_cc.dir/method_registry.cc.o"
  "CMakeFiles/oodb_cc.dir/method_registry.cc.o.d"
  "liboodb_cc.a"
  "liboodb_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
