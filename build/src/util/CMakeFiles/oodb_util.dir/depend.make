# Empty dependencies file for oodb_util.
# This may be replaced when dependencies are built.
