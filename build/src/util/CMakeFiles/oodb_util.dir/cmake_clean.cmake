file(REMOVE_RECURSE
  "CMakeFiles/oodb_util.dir/digraph.cc.o"
  "CMakeFiles/oodb_util.dir/digraph.cc.o.d"
  "CMakeFiles/oodb_util.dir/histogram.cc.o"
  "CMakeFiles/oodb_util.dir/histogram.cc.o.d"
  "CMakeFiles/oodb_util.dir/logging.cc.o"
  "CMakeFiles/oodb_util.dir/logging.cc.o.d"
  "CMakeFiles/oodb_util.dir/random.cc.o"
  "CMakeFiles/oodb_util.dir/random.cc.o.d"
  "CMakeFiles/oodb_util.dir/status.cc.o"
  "CMakeFiles/oodb_util.dir/status.cc.o.d"
  "CMakeFiles/oodb_util.dir/thread_pool.cc.o"
  "CMakeFiles/oodb_util.dir/thread_pool.cc.o.d"
  "liboodb_util.a"
  "liboodb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
