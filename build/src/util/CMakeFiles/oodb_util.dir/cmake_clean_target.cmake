file(REMOVE_RECURSE
  "liboodb_util.a"
)
