# Empty dependencies file for oodb_containers.
# This may be replaced when dependencies are built.
