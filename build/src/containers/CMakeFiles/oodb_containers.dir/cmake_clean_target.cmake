file(REMOVE_RECURSE
  "liboodb_containers.a"
)
