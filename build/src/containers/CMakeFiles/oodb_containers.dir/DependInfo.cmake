
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/containers/bptree.cc" "src/containers/CMakeFiles/oodb_containers.dir/bptree.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/bptree.cc.o.d"
  "/root/repo/src/containers/bptree_inspect.cc" "src/containers/CMakeFiles/oodb_containers.dir/bptree_inspect.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/bptree_inspect.cc.o.d"
  "/root/repo/src/containers/codec.cc" "src/containers/CMakeFiles/oodb_containers.dir/codec.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/codec.cc.o.d"
  "/root/repo/src/containers/directory.cc" "src/containers/CMakeFiles/oodb_containers.dir/directory.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/directory.cc.o.d"
  "/root/repo/src/containers/escrow.cc" "src/containers/CMakeFiles/oodb_containers.dir/escrow.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/escrow.cc.o.d"
  "/root/repo/src/containers/fifo_queue.cc" "src/containers/CMakeFiles/oodb_containers.dir/fifo_queue.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/fifo_queue.cc.o.d"
  "/root/repo/src/containers/hash_index.cc" "src/containers/CMakeFiles/oodb_containers.dir/hash_index.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/hash_index.cc.o.d"
  "/root/repo/src/containers/page_ops.cc" "src/containers/CMakeFiles/oodb_containers.dir/page_ops.cc.o" "gcc" "src/containers/CMakeFiles/oodb_containers.dir/page_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/oodb_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/oodb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/oodb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
