file(REMOVE_RECURSE
  "CMakeFiles/oodb_containers.dir/bptree.cc.o"
  "CMakeFiles/oodb_containers.dir/bptree.cc.o.d"
  "CMakeFiles/oodb_containers.dir/bptree_inspect.cc.o"
  "CMakeFiles/oodb_containers.dir/bptree_inspect.cc.o.d"
  "CMakeFiles/oodb_containers.dir/codec.cc.o"
  "CMakeFiles/oodb_containers.dir/codec.cc.o.d"
  "CMakeFiles/oodb_containers.dir/directory.cc.o"
  "CMakeFiles/oodb_containers.dir/directory.cc.o.d"
  "CMakeFiles/oodb_containers.dir/escrow.cc.o"
  "CMakeFiles/oodb_containers.dir/escrow.cc.o.d"
  "CMakeFiles/oodb_containers.dir/fifo_queue.cc.o"
  "CMakeFiles/oodb_containers.dir/fifo_queue.cc.o.d"
  "CMakeFiles/oodb_containers.dir/hash_index.cc.o"
  "CMakeFiles/oodb_containers.dir/hash_index.cc.o.d"
  "CMakeFiles/oodb_containers.dir/page_ops.cc.o"
  "CMakeFiles/oodb_containers.dir/page_ops.cc.o.d"
  "liboodb_containers.a"
  "liboodb_containers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_containers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
