file(REMOVE_RECURSE
  "CMakeFiles/oodb_workload.dir/anomalies.cc.o"
  "CMakeFiles/oodb_workload.dir/anomalies.cc.o.d"
  "CMakeFiles/oodb_workload.dir/harness.cc.o"
  "CMakeFiles/oodb_workload.dir/harness.cc.o.d"
  "CMakeFiles/oodb_workload.dir/random_history.cc.o"
  "CMakeFiles/oodb_workload.dir/random_history.cc.o.d"
  "liboodb_workload.a"
  "liboodb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
