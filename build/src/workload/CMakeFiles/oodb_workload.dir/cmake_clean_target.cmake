file(REMOVE_RECURSE
  "liboodb_workload.a"
)
