# Empty dependencies file for oodb_workload.
# This may be replaced when dependencies are built.
