file(REMOVE_RECURSE
  "CMakeFiles/oodb_schedule.dir/conventional.cc.o"
  "CMakeFiles/oodb_schedule.dir/conventional.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/dependency_engine.cc.o"
  "CMakeFiles/oodb_schedule.dir/dependency_engine.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/history_io.cc.o"
  "CMakeFiles/oodb_schedule.dir/history_io.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/multilayer.cc.o"
  "CMakeFiles/oodb_schedule.dir/multilayer.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/object_schedule.cc.o"
  "CMakeFiles/oodb_schedule.dir/object_schedule.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/printer.cc.o"
  "CMakeFiles/oodb_schedule.dir/printer.cc.o.d"
  "CMakeFiles/oodb_schedule.dir/validator.cc.o"
  "CMakeFiles/oodb_schedule.dir/validator.cc.o.d"
  "liboodb_schedule.a"
  "liboodb_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
