file(REMOVE_RECURSE
  "liboodb_schedule.a"
)
