# Empty dependencies file for oodb_schedule.
# This may be replaced when dependencies are built.
