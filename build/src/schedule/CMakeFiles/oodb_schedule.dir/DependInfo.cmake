
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schedule/conventional.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/conventional.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/conventional.cc.o.d"
  "/root/repo/src/schedule/dependency_engine.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/dependency_engine.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/dependency_engine.cc.o.d"
  "/root/repo/src/schedule/history_io.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/history_io.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/history_io.cc.o.d"
  "/root/repo/src/schedule/multilayer.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/multilayer.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/multilayer.cc.o.d"
  "/root/repo/src/schedule/object_schedule.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/object_schedule.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/object_schedule.cc.o.d"
  "/root/repo/src/schedule/printer.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/printer.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/printer.cc.o.d"
  "/root/repo/src/schedule/validator.cc" "src/schedule/CMakeFiles/oodb_schedule.dir/validator.cc.o" "gcc" "src/schedule/CMakeFiles/oodb_schedule.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/oodb_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
