
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/commutativity.cc" "src/model/CMakeFiles/oodb_model.dir/commutativity.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/commutativity.cc.o.d"
  "/root/repo/src/model/commutativity_table.cc" "src/model/CMakeFiles/oodb_model.dir/commutativity_table.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/commutativity_table.cc.o.d"
  "/root/repo/src/model/extension.cc" "src/model/CMakeFiles/oodb_model.dir/extension.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/extension.cc.o.d"
  "/root/repo/src/model/object_type.cc" "src/model/CMakeFiles/oodb_model.dir/object_type.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/object_type.cc.o.d"
  "/root/repo/src/model/transaction_system.cc" "src/model/CMakeFiles/oodb_model.dir/transaction_system.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/transaction_system.cc.o.d"
  "/root/repo/src/model/type_registry.cc" "src/model/CMakeFiles/oodb_model.dir/type_registry.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/type_registry.cc.o.d"
  "/root/repo/src/model/value.cc" "src/model/CMakeFiles/oodb_model.dir/value.cc.o" "gcc" "src/model/CMakeFiles/oodb_model.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/oodb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
