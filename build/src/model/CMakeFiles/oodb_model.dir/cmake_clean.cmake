file(REMOVE_RECURSE
  "CMakeFiles/oodb_model.dir/commutativity.cc.o"
  "CMakeFiles/oodb_model.dir/commutativity.cc.o.d"
  "CMakeFiles/oodb_model.dir/commutativity_table.cc.o"
  "CMakeFiles/oodb_model.dir/commutativity_table.cc.o.d"
  "CMakeFiles/oodb_model.dir/extension.cc.o"
  "CMakeFiles/oodb_model.dir/extension.cc.o.d"
  "CMakeFiles/oodb_model.dir/object_type.cc.o"
  "CMakeFiles/oodb_model.dir/object_type.cc.o.d"
  "CMakeFiles/oodb_model.dir/transaction_system.cc.o"
  "CMakeFiles/oodb_model.dir/transaction_system.cc.o.d"
  "CMakeFiles/oodb_model.dir/type_registry.cc.o"
  "CMakeFiles/oodb_model.dir/type_registry.cc.o.d"
  "CMakeFiles/oodb_model.dir/value.cc.o"
  "CMakeFiles/oodb_model.dir/value.cc.o.d"
  "liboodb_model.a"
  "liboodb_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oodb_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
