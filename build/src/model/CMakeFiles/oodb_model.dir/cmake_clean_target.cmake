file(REMOVE_RECURSE
  "liboodb_model.a"
)
