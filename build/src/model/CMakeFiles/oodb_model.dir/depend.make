# Empty dependencies file for oodb_model.
# This may be replaced when dependencies are built.
