file(REMOVE_RECURSE
  "CMakeFiles/schedule_golden_test.dir/schedule_golden_test.cc.o"
  "CMakeFiles/schedule_golden_test.dir/schedule_golden_test.cc.o.d"
  "schedule_golden_test"
  "schedule_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
