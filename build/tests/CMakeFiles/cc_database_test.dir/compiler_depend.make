# Empty compiler generated dependencies file for cc_database_test.
# This may be replaced when dependencies are built.
