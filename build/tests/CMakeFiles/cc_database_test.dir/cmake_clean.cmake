file(REMOVE_RECURSE
  "CMakeFiles/cc_database_test.dir/cc_database_test.cc.o"
  "CMakeFiles/cc_database_test.dir/cc_database_test.cc.o.d"
  "cc_database_test"
  "cc_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
