# Empty compiler generated dependencies file for model_transaction_system_test.
# This may be replaced when dependencies are built.
