file(REMOVE_RECURSE
  "CMakeFiles/model_transaction_system_test.dir/model_transaction_system_test.cc.o"
  "CMakeFiles/model_transaction_system_test.dir/model_transaction_system_test.cc.o.d"
  "model_transaction_system_test"
  "model_transaction_system_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_transaction_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
