file(REMOVE_RECURSE
  "CMakeFiles/apps_encyclopedia_test.dir/apps_encyclopedia_test.cc.o"
  "CMakeFiles/apps_encyclopedia_test.dir/apps_encyclopedia_test.cc.o.d"
  "apps_encyclopedia_test"
  "apps_encyclopedia_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_encyclopedia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
