file(REMOVE_RECURSE
  "CMakeFiles/cc_method_context_test.dir/cc_method_context_test.cc.o"
  "CMakeFiles/cc_method_context_test.dir/cc_method_context_test.cc.o.d"
  "cc_method_context_test"
  "cc_method_context_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_method_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
