# Empty dependencies file for cc_method_context_test.
# This may be replaced when dependencies are built.
