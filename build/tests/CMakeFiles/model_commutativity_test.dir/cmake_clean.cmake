file(REMOVE_RECURSE
  "CMakeFiles/model_commutativity_test.dir/model_commutativity_test.cc.o"
  "CMakeFiles/model_commutativity_test.dir/model_commutativity_test.cc.o.d"
  "model_commutativity_test"
  "model_commutativity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_commutativity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
