# Empty compiler generated dependencies file for model_commutativity_test.
# This may be replaced when dependencies are built.
