file(REMOVE_RECURSE
  "CMakeFiles/containers_bptree_scan_test.dir/containers_bptree_scan_test.cc.o"
  "CMakeFiles/containers_bptree_scan_test.dir/containers_bptree_scan_test.cc.o.d"
  "containers_bptree_scan_test"
  "containers_bptree_scan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_bptree_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
