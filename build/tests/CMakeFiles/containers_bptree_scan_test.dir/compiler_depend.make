# Empty compiler generated dependencies file for containers_bptree_scan_test.
# This may be replaced when dependencies are built.
