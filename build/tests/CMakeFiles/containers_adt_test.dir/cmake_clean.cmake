file(REMOVE_RECURSE
  "CMakeFiles/containers_adt_test.dir/containers_adt_test.cc.o"
  "CMakeFiles/containers_adt_test.dir/containers_adt_test.cc.o.d"
  "containers_adt_test"
  "containers_adt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_adt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
