file(REMOVE_RECURSE
  "CMakeFiles/containers_hash_index_test.dir/containers_hash_index_test.cc.o"
  "CMakeFiles/containers_hash_index_test.dir/containers_hash_index_test.cc.o.d"
  "containers_hash_index_test"
  "containers_hash_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_hash_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
