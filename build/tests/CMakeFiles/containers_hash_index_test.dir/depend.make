# Empty dependencies file for containers_hash_index_test.
# This may be replaced when dependencies are built.
