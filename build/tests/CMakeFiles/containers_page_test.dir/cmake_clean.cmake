file(REMOVE_RECURSE
  "CMakeFiles/containers_page_test.dir/containers_page_test.cc.o"
  "CMakeFiles/containers_page_test.dir/containers_page_test.cc.o.d"
  "containers_page_test"
  "containers_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
