file(REMOVE_RECURSE
  "CMakeFiles/model_precedence_property_test.dir/model_precedence_property_test.cc.o"
  "CMakeFiles/model_precedence_property_test.dir/model_precedence_property_test.cc.o.d"
  "model_precedence_property_test"
  "model_precedence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_precedence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
