# Empty dependencies file for containers_inspect_test.
# This may be replaced when dependencies are built.
