file(REMOVE_RECURSE
  "CMakeFiles/containers_inspect_test.dir/containers_inspect_test.cc.o"
  "CMakeFiles/containers_inspect_test.dir/containers_inspect_test.cc.o.d"
  "containers_inspect_test"
  "containers_inspect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_inspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
