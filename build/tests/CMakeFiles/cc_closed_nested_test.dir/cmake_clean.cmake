file(REMOVE_RECURSE
  "CMakeFiles/cc_closed_nested_test.dir/cc_closed_nested_test.cc.o"
  "CMakeFiles/cc_closed_nested_test.dir/cc_closed_nested_test.cc.o.d"
  "cc_closed_nested_test"
  "cc_closed_nested_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_closed_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
