# Empty compiler generated dependencies file for cc_closed_nested_test.
# This may be replaced when dependencies are built.
