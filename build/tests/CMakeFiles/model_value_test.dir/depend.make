# Empty dependencies file for model_value_test.
# This may be replaced when dependencies are built.
