file(REMOVE_RECURSE
  "CMakeFiles/model_value_test.dir/model_value_test.cc.o"
  "CMakeFiles/model_value_test.dir/model_value_test.cc.o.d"
  "model_value_test"
  "model_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
