file(REMOVE_RECURSE
  "CMakeFiles/cc_fault_injection_test.dir/cc_fault_injection_test.cc.o"
  "CMakeFiles/cc_fault_injection_test.dir/cc_fault_injection_test.cc.o.d"
  "cc_fault_injection_test"
  "cc_fault_injection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_fault_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
