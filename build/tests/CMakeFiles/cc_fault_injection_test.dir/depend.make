# Empty dependencies file for cc_fault_injection_test.
# This may be replaced when dependencies are built.
