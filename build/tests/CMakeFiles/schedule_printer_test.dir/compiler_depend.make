# Empty compiler generated dependencies file for schedule_printer_test.
# This may be replaced when dependencies are built.
