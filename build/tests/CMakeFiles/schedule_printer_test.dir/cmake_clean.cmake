file(REMOVE_RECURSE
  "CMakeFiles/schedule_printer_test.dir/schedule_printer_test.cc.o"
  "CMakeFiles/schedule_printer_test.dir/schedule_printer_test.cc.o.d"
  "schedule_printer_test"
  "schedule_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
