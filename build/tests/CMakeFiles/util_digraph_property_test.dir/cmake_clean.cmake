file(REMOVE_RECURSE
  "CMakeFiles/util_digraph_property_test.dir/util_digraph_property_test.cc.o"
  "CMakeFiles/util_digraph_property_test.dir/util_digraph_property_test.cc.o.d"
  "util_digraph_property_test"
  "util_digraph_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_digraph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
