# Empty compiler generated dependencies file for schedule_conventional_test.
# This may be replaced when dependencies are built.
