file(REMOVE_RECURSE
  "CMakeFiles/schedule_conventional_test.dir/schedule_conventional_test.cc.o"
  "CMakeFiles/schedule_conventional_test.dir/schedule_conventional_test.cc.o.d"
  "schedule_conventional_test"
  "schedule_conventional_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_conventional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
