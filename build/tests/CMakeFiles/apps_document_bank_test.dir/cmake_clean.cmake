file(REMOVE_RECURSE
  "CMakeFiles/apps_document_bank_test.dir/apps_document_bank_test.cc.o"
  "CMakeFiles/apps_document_bank_test.dir/apps_document_bank_test.cc.o.d"
  "apps_document_bank_test"
  "apps_document_bank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_document_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
