# Empty dependencies file for apps_document_bank_test.
# This may be replaced when dependencies are built.
