# Empty dependencies file for schedule_validator_test.
# This may be replaced when dependencies are built.
