file(REMOVE_RECURSE
  "CMakeFiles/model_spec_symmetry_test.dir/model_spec_symmetry_test.cc.o"
  "CMakeFiles/model_spec_symmetry_test.dir/model_spec_symmetry_test.cc.o.d"
  "model_spec_symmetry_test"
  "model_spec_symmetry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_spec_symmetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
