# Empty dependencies file for model_spec_symmetry_test.
# This may be replaced when dependencies are built.
