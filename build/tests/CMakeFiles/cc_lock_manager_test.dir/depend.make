# Empty dependencies file for cc_lock_manager_test.
# This may be replaced when dependencies are built.
