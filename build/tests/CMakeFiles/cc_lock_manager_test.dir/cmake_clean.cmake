file(REMOVE_RECURSE
  "CMakeFiles/cc_lock_manager_test.dir/cc_lock_manager_test.cc.o"
  "CMakeFiles/cc_lock_manager_test.dir/cc_lock_manager_test.cc.o.d"
  "cc_lock_manager_test"
  "cc_lock_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_lock_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
