file(REMOVE_RECURSE
  "CMakeFiles/schedule_paper_examples_test.dir/schedule_paper_examples_test.cc.o"
  "CMakeFiles/schedule_paper_examples_test.dir/schedule_paper_examples_test.cc.o.d"
  "schedule_paper_examples_test"
  "schedule_paper_examples_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_paper_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
