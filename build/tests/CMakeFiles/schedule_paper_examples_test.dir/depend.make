# Empty dependencies file for schedule_paper_examples_test.
# This may be replaced when dependencies are built.
