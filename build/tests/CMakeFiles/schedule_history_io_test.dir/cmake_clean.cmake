file(REMOVE_RECURSE
  "CMakeFiles/schedule_history_io_test.dir/schedule_history_io_test.cc.o"
  "CMakeFiles/schedule_history_io_test.dir/schedule_history_io_test.cc.o.d"
  "schedule_history_io_test"
  "schedule_history_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_history_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
