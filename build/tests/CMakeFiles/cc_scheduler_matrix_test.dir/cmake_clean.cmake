file(REMOVE_RECURSE
  "CMakeFiles/cc_scheduler_matrix_test.dir/cc_scheduler_matrix_test.cc.o"
  "CMakeFiles/cc_scheduler_matrix_test.dir/cc_scheduler_matrix_test.cc.o.d"
  "cc_scheduler_matrix_test"
  "cc_scheduler_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_scheduler_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
