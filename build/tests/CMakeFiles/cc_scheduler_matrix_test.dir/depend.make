# Empty dependencies file for cc_scheduler_matrix_test.
# This may be replaced when dependencies are built.
