file(REMOVE_RECURSE
  "CMakeFiles/schedule_dependency_test.dir/schedule_dependency_test.cc.o"
  "CMakeFiles/schedule_dependency_test.dir/schedule_dependency_test.cc.o.d"
  "schedule_dependency_test"
  "schedule_dependency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_dependency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
