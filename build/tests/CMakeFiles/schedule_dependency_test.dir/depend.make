# Empty dependencies file for schedule_dependency_test.
# This may be replaced when dependencies are built.
