file(REMOVE_RECURSE
  "CMakeFiles/model_extension_property_test.dir/model_extension_property_test.cc.o"
  "CMakeFiles/model_extension_property_test.dir/model_extension_property_test.cc.o.d"
  "model_extension_property_test"
  "model_extension_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_extension_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
