# Empty dependencies file for model_extension_property_test.
# This may be replaced when dependencies are built.
