# Empty dependencies file for schedule_multilayer_test.
# This may be replaced when dependencies are built.
