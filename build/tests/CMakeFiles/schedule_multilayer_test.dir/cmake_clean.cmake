file(REMOVE_RECURSE
  "CMakeFiles/schedule_multilayer_test.dir/schedule_multilayer_test.cc.o"
  "CMakeFiles/schedule_multilayer_test.dir/schedule_multilayer_test.cc.o.d"
  "schedule_multilayer_test"
  "schedule_multilayer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_multilayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
