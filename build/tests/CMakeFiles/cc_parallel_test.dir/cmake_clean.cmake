file(REMOVE_RECURSE
  "CMakeFiles/cc_parallel_test.dir/cc_parallel_test.cc.o"
  "CMakeFiles/cc_parallel_test.dir/cc_parallel_test.cc.o.d"
  "cc_parallel_test"
  "cc_parallel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
