# Empty dependencies file for schedule_anomalies_test.
# This may be replaced when dependencies are built.
