file(REMOVE_RECURSE
  "CMakeFiles/schedule_anomalies_test.dir/schedule_anomalies_test.cc.o"
  "CMakeFiles/schedule_anomalies_test.dir/schedule_anomalies_test.cc.o.d"
  "schedule_anomalies_test"
  "schedule_anomalies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_anomalies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
