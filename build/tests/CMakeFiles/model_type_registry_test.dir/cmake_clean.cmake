file(REMOVE_RECURSE
  "CMakeFiles/model_type_registry_test.dir/model_type_registry_test.cc.o"
  "CMakeFiles/model_type_registry_test.dir/model_type_registry_test.cc.o.d"
  "model_type_registry_test"
  "model_type_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_type_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
