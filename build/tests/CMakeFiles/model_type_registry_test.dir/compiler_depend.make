# Empty compiler generated dependencies file for model_type_registry_test.
# This may be replaced when dependencies are built.
