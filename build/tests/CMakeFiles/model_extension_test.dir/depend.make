# Empty dependencies file for model_extension_test.
# This may be replaced when dependencies are built.
