file(REMOVE_RECURSE
  "CMakeFiles/fig1_transaction_profiles.dir/fig1_transaction_profiles.cc.o"
  "CMakeFiles/fig1_transaction_profiles.dir/fig1_transaction_profiles.cc.o.d"
  "fig1_transaction_profiles"
  "fig1_transaction_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_transaction_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
