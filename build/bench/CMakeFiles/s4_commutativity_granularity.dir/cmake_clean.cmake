file(REMOVE_RECURSE
  "CMakeFiles/s4_commutativity_granularity.dir/s4_commutativity_granularity.cc.o"
  "CMakeFiles/s4_commutativity_granularity.dir/s4_commutativity_granularity.cc.o.d"
  "s4_commutativity_granularity"
  "s4_commutativity_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s4_commutativity_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
