# Empty compiler generated dependencies file for s4_commutativity_granularity.
# This may be replaced when dependencies are built.
