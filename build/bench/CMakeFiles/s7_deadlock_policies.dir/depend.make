# Empty dependencies file for s7_deadlock_policies.
# This may be replaced when dependencies are built.
