file(REMOVE_RECURSE
  "CMakeFiles/s7_deadlock_policies.dir/s7_deadlock_policies.cc.o"
  "CMakeFiles/s7_deadlock_policies.dir/s7_deadlock_policies.cc.o.d"
  "s7_deadlock_policies"
  "s7_deadlock_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s7_deadlock_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
