file(REMOVE_RECURSE
  "CMakeFiles/fig4_dependency_inheritance.dir/fig4_dependency_inheritance.cc.o"
  "CMakeFiles/fig4_dependency_inheritance.dir/fig4_dependency_inheritance.cc.o.d"
  "fig4_dependency_inheritance"
  "fig4_dependency_inheritance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dependency_inheritance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
