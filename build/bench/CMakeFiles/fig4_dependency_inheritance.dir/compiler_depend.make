# Empty compiler generated dependencies file for fig4_dependency_inheritance.
# This may be replaced when dependencies are built.
