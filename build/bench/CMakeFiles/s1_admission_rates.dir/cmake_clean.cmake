file(REMOVE_RECURSE
  "CMakeFiles/s1_admission_rates.dir/s1_admission_rates.cc.o"
  "CMakeFiles/s1_admission_rates.dir/s1_admission_rates.cc.o.d"
  "s1_admission_rates"
  "s1_admission_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s1_admission_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
