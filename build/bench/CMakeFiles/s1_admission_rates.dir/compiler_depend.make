# Empty compiler generated dependencies file for s1_admission_rates.
# This may be replaced when dependencies are built.
