# Empty dependencies file for fig8_dependency_table.
# This may be replaced when dependencies are built.
