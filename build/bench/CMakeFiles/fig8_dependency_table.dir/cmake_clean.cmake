file(REMOVE_RECURSE
  "CMakeFiles/fig8_dependency_table.dir/fig8_dependency_table.cc.o"
  "CMakeFiles/fig8_dependency_table.dir/fig8_dependency_table.cc.o.d"
  "fig8_dependency_table"
  "fig8_dependency_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dependency_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
