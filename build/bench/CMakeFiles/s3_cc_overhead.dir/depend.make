# Empty dependencies file for s3_cc_overhead.
# This may be replaced when dependencies are built.
