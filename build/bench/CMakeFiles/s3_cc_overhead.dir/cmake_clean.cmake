file(REMOVE_RECURSE
  "CMakeFiles/s3_cc_overhead.dir/s3_cc_overhead.cc.o"
  "CMakeFiles/s3_cc_overhead.dir/s3_cc_overhead.cc.o.d"
  "s3_cc_overhead"
  "s3_cc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s3_cc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
