file(REMOVE_RECURSE
  "CMakeFiles/fig5_transaction_trees.dir/fig5_transaction_trees.cc.o"
  "CMakeFiles/fig5_transaction_trees.dir/fig5_transaction_trees.cc.o.d"
  "fig5_transaction_trees"
  "fig5_transaction_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_transaction_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
