# Empty dependencies file for fig7_system_schedule.
# This may be replaced when dependencies are built.
