file(REMOVE_RECURSE
  "CMakeFiles/fig7_system_schedule.dir/fig7_system_schedule.cc.o"
  "CMakeFiles/fig7_system_schedule.dir/fig7_system_schedule.cc.o.d"
  "fig7_system_schedule"
  "fig7_system_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_system_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
