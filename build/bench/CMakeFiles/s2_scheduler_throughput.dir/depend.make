# Empty dependencies file for s2_scheduler_throughput.
# This may be replaced when dependencies are built.
