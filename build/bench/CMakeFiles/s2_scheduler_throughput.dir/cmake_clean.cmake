file(REMOVE_RECURSE
  "CMakeFiles/s2_scheduler_throughput.dir/s2_scheduler_throughput.cc.o"
  "CMakeFiles/s2_scheduler_throughput.dir/s2_scheduler_throughput.cc.o.d"
  "s2_scheduler_throughput"
  "s2_scheduler_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2_scheduler_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
