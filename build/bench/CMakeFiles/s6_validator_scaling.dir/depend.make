# Empty dependencies file for s6_validator_scaling.
# This may be replaced when dependencies are built.
