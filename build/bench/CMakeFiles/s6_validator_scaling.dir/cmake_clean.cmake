file(REMOVE_RECURSE
  "CMakeFiles/s6_validator_scaling.dir/s6_validator_scaling.cc.o"
  "CMakeFiles/s6_validator_scaling.dir/s6_validator_scaling.cc.o.d"
  "s6_validator_scaling"
  "s6_validator_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s6_validator_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
