file(REMOVE_RECURSE
  "CMakeFiles/s8_index_structures.dir/s8_index_structures.cc.o"
  "CMakeFiles/s8_index_structures.dir/s8_index_structures.cc.o.d"
  "s8_index_structures"
  "s8_index_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s8_index_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
