# Empty compiler generated dependencies file for s8_index_structures.
# This may be replaced when dependencies are built.
