file(REMOVE_RECURSE
  "CMakeFiles/s5_open_vs_closed.dir/s5_open_vs_closed.cc.o"
  "CMakeFiles/s5_open_vs_closed.dir/s5_open_vs_closed.cc.o.d"
  "s5_open_vs_closed"
  "s5_open_vs_closed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s5_open_vs_closed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
