# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for s5_open_vs_closed.
