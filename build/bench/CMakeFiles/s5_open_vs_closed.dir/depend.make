# Empty dependencies file for s5_open_vs_closed.
# This may be replaced when dependencies are built.
