# Empty compiler generated dependencies file for s9_anomaly_detection.
# This may be replaced when dependencies are built.
