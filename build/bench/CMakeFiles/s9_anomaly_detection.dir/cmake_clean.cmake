file(REMOVE_RECURSE
  "CMakeFiles/s9_anomaly_detection.dir/s9_anomaly_detection.cc.o"
  "CMakeFiles/s9_anomaly_detection.dir/s9_anomaly_detection.cc.o.d"
  "s9_anomaly_detection"
  "s9_anomaly_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s9_anomaly_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
