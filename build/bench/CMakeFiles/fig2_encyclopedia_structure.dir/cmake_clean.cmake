file(REMOVE_RECURSE
  "CMakeFiles/fig2_encyclopedia_structure.dir/fig2_encyclopedia_structure.cc.o"
  "CMakeFiles/fig2_encyclopedia_structure.dir/fig2_encyclopedia_structure.cc.o.d"
  "fig2_encyclopedia_structure"
  "fig2_encyclopedia_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_encyclopedia_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
