# Empty dependencies file for fig6_virtual_extension.
# This may be replaced when dependencies are built.
