file(REMOVE_RECURSE
  "CMakeFiles/fig6_virtual_extension.dir/fig6_virtual_extension.cc.o"
  "CMakeFiles/fig6_virtual_extension.dir/fig6_virtual_extension.cc.o.d"
  "fig6_virtual_extension"
  "fig6_virtual_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_virtual_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
