# Empty dependencies file for validate_history.
# This may be replaced when dependencies are built.
