file(REMOVE_RECURSE
  "CMakeFiles/validate_history.dir/validate_history.cpp.o"
  "CMakeFiles/validate_history.dir/validate_history.cpp.o.d"
  "validate_history"
  "validate_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
