file(REMOVE_RECURSE
  "CMakeFiles/encyclopedia.dir/encyclopedia.cpp.o"
  "CMakeFiles/encyclopedia.dir/encyclopedia.cpp.o.d"
  "encyclopedia"
  "encyclopedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encyclopedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
