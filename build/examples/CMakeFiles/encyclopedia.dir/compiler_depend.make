# Empty compiler generated dependencies file for encyclopedia.
# This may be replaced when dependencies are built.
