file(REMOVE_RECURSE
  "CMakeFiles/banking_escrow.dir/banking_escrow.cpp.o"
  "CMakeFiles/banking_escrow.dir/banking_escrow.cpp.o.d"
  "banking_escrow"
  "banking_escrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banking_escrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
