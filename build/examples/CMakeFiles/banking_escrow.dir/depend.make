# Empty dependencies file for banking_escrow.
# This may be replaced when dependencies are built.
