file(REMOVE_RECURSE
  "CMakeFiles/coop_editing.dir/coop_editing.cpp.o"
  "CMakeFiles/coop_editing.dir/coop_editing.cpp.o.d"
  "coop_editing"
  "coop_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coop_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
