# Empty dependencies file for coop_editing.
# This may be replaced when dependencies are built.
