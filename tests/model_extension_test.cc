#include "model/extension.h"

#include <gtest/gtest.h>

namespace oodb {
namespace {

const ObjectType* NodeType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    spec->SetPredicate("insert", "insert",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetConflicts("insert", "rearrange");
    spec->SetConflicts("rearrange", "rearrange");
    return new ObjectType("Node", std::move(spec));
  }();
  return type;
}

const ObjectType* PageType() {
  static const ObjectType* type = [] {
    return new ObjectType("Page",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"read"}),
                          /*primitive=*/true);
  }();
  return type;
}

TEST(ExtensionTest, NoCycleNoWork) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(NodeType(), "Node6");
  ObjectId page = ts.AddObject(PageType(), "Page1");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node, Invocation("insert", {Value("k")}));
  ts.Call(ins, page, Invocation("write"));
  EXPECT_FALSE(SystemExtender::NeedsExtension(ts));
  ExtensionStats stats = SystemExtender::Extend(&ts);
  EXPECT_EQ(stats.cycles_broken, 0u);
  EXPECT_EQ(stats.virtual_objects, 0u);
  EXPECT_EQ(ts.object_count(), 3u);
}

TEST(ExtensionTest, BLinkRearrangeCycleBroken) {
  // The paper's section 2 schedule:
  //   Node6.insert -> Leaf11.insert -> Leaf12.insert -> Node6.rearrange
  // Node6 is accessed twice along one call path.
  TransactionSystem ts;
  ObjectId node6 = ts.AddObject(NodeType(), "Node6");
  ObjectId leaf11 = ts.AddObject(NodeType(), "Leaf11");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node6, Invocation("insert", {Value("k")}));
  ActionId lins = ts.Call(ins, leaf11, Invocation("insert", {Value("k")}));
  ActionId rearr = ts.Call(lins, node6, Invocation("rearrange"));

  EXPECT_TRUE(SystemExtender::NeedsExtension(ts));
  auto offenders = SystemExtender::FindCycleActions(ts);
  ASSERT_EQ(offenders.size(), 1u);
  EXPECT_EQ(offenders[0], rearr);

  ExtensionStats stats = SystemExtender::Extend(&ts);
  EXPECT_EQ(stats.cycles_broken, 1u);
  EXPECT_EQ(stats.virtual_objects, 1u);
  // Node6 had {ins, rearr}; rearr moved away, so ins is duplicated.
  EXPECT_EQ(stats.virtual_actions, 1u);
  EXPECT_FALSE(SystemExtender::NeedsExtension(ts));

  // rearr now lives on the virtual object Node6'.
  ObjectId vobj = ts.action(rearr).object;
  EXPECT_NE(vobj, node6);
  EXPECT_TRUE(ts.object(vobj).is_virtual);
  EXPECT_EQ(ts.object(vobj).original, node6);
  EXPECT_EQ(ts.object(vobj).name, "Node6'");

  // ins keeps its object and gained a virtual duplicate child on Node6'.
  EXPECT_EQ(ts.action(ins).object, node6);
  bool found_dup = false;
  for (ActionId c : ts.action(ins).children) {
    const ActionRecord& rec = ts.action(c);
    if (rec.is_virtual) {
      found_dup = true;
      EXPECT_EQ(rec.object, vobj);
      EXPECT_EQ(rec.original, ins);
      EXPECT_EQ(rec.invocation, ts.action(ins).invocation);
    }
  }
  EXPECT_TRUE(found_dup);

  // ACT_Node6 no longer contains rearr.
  for (ActionId a : ts.ActionsOn(node6)) EXPECT_NE(a, rearr);
}

TEST(ExtensionTest, Idempotent) {
  TransactionSystem ts;
  ObjectId node6 = ts.AddObject(NodeType(), "Node6");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node6, Invocation("insert", {Value("k")}));
  ts.Call(ins, node6, Invocation("rearrange"));

  SystemExtender::Extend(&ts);
  size_t objects = ts.object_count();
  size_t actions = ts.action_count();
  ExtensionStats again = SystemExtender::Extend(&ts);
  EXPECT_EQ(again.cycles_broken, 0u);
  EXPECT_EQ(ts.object_count(), objects);
  EXPECT_EQ(ts.action_count(), actions);
}

TEST(ExtensionTest, OtherTransactionsActionsDuplicated) {
  // A concurrent transaction's conflicting action on Node6 must be
  // duplicated so the moved rearrange can still observe the conflict.
  TransactionSystem ts;
  ObjectId node6 = ts.AddObject(NodeType(), "Node6");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId ins1 = ts.Call(t1, node6, Invocation("insert", {Value("a")}));
  ActionId rearr = ts.Call(ins1, node6, Invocation("rearrange"));
  ActionId ins2 = ts.Call(t2, node6, Invocation("insert", {Value("b")}));

  ExtensionStats stats = SystemExtender::Extend(&ts);
  EXPECT_EQ(stats.cycles_broken, 1u);
  // Both ins1 and ins2 duplicated onto Node6'.
  EXPECT_EQ(stats.virtual_actions, 2u);

  ObjectId vobj = ts.action(rearr).object;
  // ACT_Node6' = {rearr, ins1', ins2'}.
  EXPECT_EQ(ts.ActionsOn(vobj).size(), 3u);
  size_t virt = 0;
  for (ActionId a : ts.ActionsOn(vobj)) {
    if (ts.action(a).is_virtual) {
      ++virt;
      ActionId orig = ts.action(a).original;
      EXPECT_TRUE(orig == ins1 || orig == ins2);
    }
  }
  EXPECT_EQ(virt, 2u);
}

TEST(ExtensionTest, PrimitiveTimestampCopiedToDuplicate) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId w1 = ts.Call(t1, page, Invocation("write"));
  ts.SetTimestamp(w1, ts.NextTimestamp());
  // A deeper access to the same page from within w1's subtree: writes on
  // pages are primitive, so this is artificial, but exercises the copy.
  ActionId w2 = ts.Call(w1, page, Invocation("write"));
  ts.SetTimestamp(w2, ts.NextTimestamp());

  SystemExtender::Extend(&ts);
  ObjectId vobj = ts.action(w2).object;
  ASSERT_NE(vobj, page);
  size_t dups = 0;
  for (ActionId a : ts.ActionsOn(vobj)) {
    const ActionRecord& rec = ts.action(a);
    if (rec.is_virtual) {
      ++dups;
      EXPECT_EQ(rec.timestamp, ts.action(rec.original).timestamp);
      // The duplicate of a primitive is itself primitive on the virtual
      // object, so Axiom 1 can order it against the moved action.
      EXPECT_TRUE(ts.IsPrimitive(a));
    }
  }
  EXPECT_EQ(dups, 1u);
  // w1 genuinely calls w2, so it is not primitive (Def 3) — but the
  // *virtual* duplicate child alone would not have disqualified it.
  EXPECT_FALSE(ts.IsPrimitive(w1));
  EXPECT_TRUE(ts.IsPrimitive(w2));
}

TEST(ExtensionTest, MultipleOffendersEachGetOwnVirtualObject) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(NodeType(), "N");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, node, Invocation("insert", {Value("x")}));
  ActionId r1 = ts.Call(a, node, Invocation("rearrange"), false);
  ActionId r2 = ts.Call(a, node, Invocation("rearrange"), false);

  ExtensionStats stats = SystemExtender::Extend(&ts);
  EXPECT_EQ(stats.cycles_broken, 2u);
  EXPECT_EQ(stats.virtual_objects, 2u);
  EXPECT_NE(ts.action(r1).object, ts.action(r2).object);
  EXPECT_FALSE(SystemExtender::NeedsExtension(ts));
}

TEST(ExtensionTest, DeepChainResolved) {
  // t -> a -> b, where t, a, b all access object O: two offenders at
  // different depths.
  TransactionSystem ts;
  ObjectId node = ts.AddObject(NodeType(), "N");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, node, Invocation("insert", {Value("x")}));
  ActionId b = ts.Call(a, node, Invocation("rearrange"));
  ActionId c = ts.Call(b, node, Invocation("rearrange"));

  EXPECT_EQ(SystemExtender::FindCycleActions(ts).size(), 2u);
  SystemExtender::Extend(&ts);
  EXPECT_FALSE(SystemExtender::NeedsExtension(ts));
  // All three end up on pairwise different objects.
  EXPECT_NE(ts.action(a).object, ts.action(b).object);
  EXPECT_NE(ts.action(b).object, ts.action(c).object);
  EXPECT_NE(ts.action(a).object, ts.action(c).object);
}

}  // namespace
}  // namespace oodb
