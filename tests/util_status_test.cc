#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace oodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Conflict("lock incompatible");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(s.message(), "lock incompatible");
  EXPECT_EQ(s.ToString(), "Conflict: lock incompatible");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Conflict("x").code(), StatusCode::kConflict);
  EXPECT_EQ(Status::Deadlock("x").code(), StatusCode::kDeadlock);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::NotSerializable("x").code(),
            StatusCode::kNotSerializable);
  EXPECT_EQ(Status::Capacity("x").code(), StatusCode::kCapacity);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Conflict("a"), Status::Conflict("b"));
  EXPECT_FALSE(Status::Conflict("a") == Status::Deadlock("a"));
}

TEST(StatusTest, PredicatesDiscriminate) {
  EXPECT_TRUE(Status::Deadlock("d").IsDeadlock());
  EXPECT_FALSE(Status::Deadlock("d").IsConflict());
  EXPECT_TRUE(Status::Aborted("a").IsAborted());
  EXPECT_TRUE(Status::NotSerializable("n").IsNotSerializable());
  EXPECT_TRUE(Status::NotFound("n").IsNotFound());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int v) {
  OODB_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnMacro(3).ok());
  EXPECT_EQ(UsesReturnMacro(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UsesAssignMacro(int v, int* out) {
  OODB_ASSIGN_OR_RETURN(int half, Half(v));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignMacro(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignMacro(3, &out).code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Capacity("page full");
  EXPECT_EQ(os.str(), "Capacity: page full");
}

}  // namespace
}  // namespace oodb
