#include "containers/hash_index.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  void Build(size_t bucket_capacity = 4) {
    db_ = std::make_unique<Database>();
    RegisterPageMethods(db_.get());
    HashIndex::RegisterMethods(db_.get());
    index_ = HashIndex::Create(db_.get(), "H", bucket_capacity);
  }

  Status Insert(const std::string& k, const std::string& v) {
    return db_->RunTransaction("ins", [&](MethodContext& txn) {
      return txn.Call(index_, HashIndex::Insert(k, v));
    });
  }

  Value Search(const std::string& k) {
    Value out;
    Status st = db_->RunTransaction("get", [&](MethodContext& txn) {
      return txn.Call(index_, HashIndex::Search(k), &out);
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "h%04d", i);
    return buf;
  }

  std::unique_ptr<Database> db_;
  ObjectId index_;
};

TEST(HashKeyTest, DeterministicAndSpread) {
  EXPECT_EQ(HashKey("abc"), HashKey("abc"));
  EXPECT_NE(HashKey("abc"), HashKey("abd"));
  // Low bits spread: over 256 keys, both values of bit 0 occur.
  std::set<uint64_t> low_bits;
  for (int i = 0; i < 256; ++i) {
    low_bits.insert(HashKey("k" + std::to_string(i)) & 1);
  }
  EXPECT_EQ(low_bits.size(), 2u);
}

TEST_F(HashIndexTest, EmptySearchIsNone) {
  Build();
  EXPECT_TRUE(Search("nope").IsNone());
}

TEST_F(HashIndexTest, InsertSearchRoundTrip) {
  Build();
  ASSERT_TRUE(Insert("a", "1").ok());
  EXPECT_EQ(Search("a").AsString(), "1");
}

TEST_F(HashIndexTest, OverwriteKeepsLatest) {
  Build();
  ASSERT_TRUE(Insert("a", "1").ok());
  ASSERT_TRUE(Insert("a", "2").ok());
  EXPECT_EQ(Search("a").AsString(), "2");
}

TEST_F(HashIndexTest, SplitsPreserveAllKeys) {
  Build(/*bucket_capacity=*/4);
  constexpr int kN = 200;  // forces many splits and directory doublings
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(Insert(Key(i), Key(i)).ok()) << i;
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
  auto* state = db_->StateOf<HashIndexState>(index_);
  EXPECT_GT(state->global_depth, 2u);
  EXPECT_EQ(state->directory.size(), size_t{1} << state->global_depth);
}

TEST_F(HashIndexTest, DirectoryInvariantsAfterLoad) {
  Build(4);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  auto* state = db_->StateOf<HashIndexState>(index_);
  for (size_t slot = 0; slot < state->directory.size(); ++slot) {
    ObjectId bucket = state->directory[slot];
    ASSERT_TRUE(bucket.valid());
    auto* b = db_->StateOf<BucketState>(bucket);
    // The slot's low local_depth bits match the bucket's pattern.
    EXPECT_EQ(uint64_t(slot) & ((uint64_t{1} << b->local_depth) - 1),
              b->pattern)
        << "slot " << slot;
    EXPECT_LE(b->local_depth, state->global_depth);
  }
}

TEST_F(HashIndexTest, EraseRemovesKey) {
  Build();
  ASSERT_TRUE(Insert("a", "1").ok());
  ASSERT_TRUE(Insert("b", "2").ok());
  Value old;
  ASSERT_TRUE(db_->RunTransaction("del", [&](MethodContext& txn) {
                  return txn.Call(index_, HashIndex::Erase("a"), &old);
                }).ok());
  EXPECT_EQ(old.AsString(), "1");
  EXPECT_TRUE(Search("a").IsNone());
  EXPECT_EQ(Search("b").AsString(), "2");
}

TEST_F(HashIndexTest, AbortCompensates) {
  Build();
  ASSERT_TRUE(Insert("keep", "1").ok());
  (void)db_->RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(index_, HashIndex::Insert("gone", "2")));
    OODB_RETURN_IF_ERROR(txn.Call(index_, HashIndex::Insert("keep", "9")));
    return Status::Aborted("rollback");
  });
  EXPECT_TRUE(Search("gone").IsNone());
  EXPECT_EQ(Search("keep").AsString(), "1");
}

TEST_F(HashIndexTest, AbortAcrossSplitCompensatesContentOnly) {
  Build(/*bucket_capacity=*/2);
  ASSERT_TRUE(Insert(Key(0), "v").ok());
  ASSERT_TRUE(Insert(Key(1), "v").ok());
  (void)db_->RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(index_, HashIndex::Insert(Key(2), "v")));
    return Status::Aborted("rollback");
  });
  // The split (if any) persists; the inserted key does not.
  EXPECT_TRUE(Search(Key(2)).IsNone());
  EXPECT_EQ(Search(Key(0)).AsString(), "v");
  EXPECT_EQ(Search(Key(1)).AsString(), "v");
}

TEST_F(HashIndexTest, SequentialHistoryValidates) {
  Build(4);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

TEST_F(HashIndexTest, ConcurrentInsertsAllLand) {
  Build(/*bucket_capacity=*/8);
  constexpr int kThreads = 4;
  constexpr int kEach = 40;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        int id = t * kEach + i;
        Status st = db_->RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(index_, HashIndex::Insert(Key(id), Key(id)));
        });
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads * kEach; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
  EXPECT_EQ(db_->locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST_F(HashIndexTest, ConcurrentMixedOps) {
  Build(8);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(Insert(Key(i), "base").ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        int id = (i * 17 + t * 5) % 60;
        if (i % 4 == 0) {
          Value out;
          (void)db_->RunTransaction("get", [&](MethodContext& txn) {
            return txn.Call(index_, HashIndex::Search(Key(id)), &out);
          });
        } else if (i % 7 == 0) {
          (void)db_->RunTransaction("del", [&](MethodContext& txn) {
            return txn.Call(index_, HashIndex::Erase(Key(id)));
          });
        } else {
          (void)db_->RunTransaction("ins", [&](MethodContext& txn) {
            return txn.Call(index_,
                            HashIndex::Insert(Key(id), "t" + std::to_string(t)));
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db_->locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

}  // namespace
}  // namespace oodb
