// Crash recovery end to end, without forking: committed work survives a
// restart that never checkpointed, losers are compensated away with
// CLRs on the log, and a second crash during undo resumes instead of
// undoing twice.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "containers/directory.h"
#include "containers/persist.h"
#include "storage/recovery.h"

namespace oodb {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = "/tmp/oodb_recovery_test_" + std::string(info->name()) + "_" +
           std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Open the store into `db`, attach the "D" directory root, replay
  /// the epoch WAL, and (unless told otherwise) attach durability so
  /// new transactions log.
  Status OpenRecovered(StorageEngine* engine, Database* db,
                       RecoveryStats* stats = nullptr,
                       RecoveryOptions options = {},
                       bool attach_durability = true) {
    RegisterDirectoryMethods(db);
    OODB_RETURN_IF_ERROR(RegisterStandardSerdes(engine));
    OODB_RETURN_IF_ERROR(engine->Open(db));
    if (!engine->RootId("D").valid()) {
      OODB_RETURN_IF_ERROR(
          engine->AttachRoot("D", "directory", CreateDirectory(db, "D")));
    }
    OODB_RETURN_IF_ERROR(Recover(engine, db, stats, options));
    if (attach_durability) db->AttachDurability(engine);
    return Status::OK();
  }

  StorageEngineOptions Opts() const {
    StorageEngineOptions opts;
    opts.dir = dir_;
    return opts;
  }

  Status Insert(Database* db, ObjectId root, const std::string& key,
                const std::string& val) {
    return db->RunTransaction("T", [&](MethodContext& txn) {
      return txn.Call(root, Invocation("insert", {Value(key), Value(val)}));
    });
  }

  /// Appends a synthetic in-flight transaction to the live WAL: ops
  /// logged (with compensations), no commit or abort record — exactly
  /// what a crash mid-transaction leaves behind.
  void AppendLoser(StorageEngine* engine, uint64_t txn,
                   const std::vector<std::string>& keys,
                   std::vector<uint64_t>* op_lsns = nullptr) {
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = txn;
    begin.txn_name = "loser";
    ASSERT_TRUE(engine->wal().Append(begin).ok());
    for (const std::string& key : keys) {
      WalRecord op;
      op.type = WalRecordType::kOp;
      op.txn = txn;
      op.root = "D";
      op.op = Invocation("insert", {Value(key), Value("lost")});
      op.has_comp = true;
      op.comp = Invocation("remove", {Value(key)});
      auto lsn = engine->wal().Append(op);
      ASSERT_TRUE(lsn.ok());
      if (op_lsns) op_lsns->push_back(*lsn);
    }
    ASSERT_TRUE(engine->wal().Force().ok());
  }

  std::set<std::string> Keys(Database* db, ObjectId root) {
    std::set<std::string> out;
    for (const auto& [k, v] : db->StateOf<DirectoryState>(root)->entries) {
      (void)v;
      out.insert(k);
    }
    return out;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, CommittedWorkSurvivesRestartWithoutCheckpoint) {
  std::string dump;
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    ObjectId root = engine.RootId("D");
    ASSERT_TRUE(Insert(&db, root, "k1", "v1").ok());
    ASSERT_TRUE(Insert(&db, root, "k2", "v2").ok());
    // A clean abort: compensations run live, an abort record lands.
    Status st = db.RunTransaction("A", [&](MethodContext& txn) {
      OODB_RETURN_IF_ERROR(
          txn.Call(root, Invocation("insert", {Value("k3"), Value("v3")})));
      return Status::Aborted("induced");
    });
    ASSERT_TRUE(st.IsAborted());
    dump = engine.DumpRoots(db);
    // No checkpoint: everything since Open lives only in the WAL.
  }

  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  EXPECT_EQ(stats.winners, 2u);
  EXPECT_EQ(stats.resolved, 1u);
  EXPECT_EQ(stats.losers, 0u);
  EXPECT_GT(stats.redo_records, 0u);
  EXPECT_EQ(stats.undo_records, 0u);

  ObjectId root = engine.RootId("D");
  EXPECT_EQ(Keys(&db, root), (std::set<std::string>{"k1", "k2"}));
  EXPECT_EQ(engine.DumpRoots(db), dump);
}

TEST_F(RecoveryTest, CheckpointMakesRedoEmpty) {
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    ASSERT_TRUE(Insert(&db, engine.RootId("D"), "ck", "v").ok());
    ASSERT_TRUE(engine.Checkpoint(&db).ok());
  }
  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  // The commit is in the checkpoint image, not the fresh epoch's log.
  EXPECT_EQ(stats.redo_records, 0u);
  EXPECT_EQ(stats.winners, 0u);
  EXPECT_EQ(Keys(&db, engine.RootId("D")),
            (std::set<std::string>{"ck"}));
}

TEST_F(RecoveryTest, LoserIsUndoneAndClrsHitTheLog) {
  uint64_t crash_epoch = 0;
  std::vector<uint64_t> op_lsns;
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    crash_epoch = engine.epoch();
    ASSERT_TRUE(Insert(&db, engine.RootId("D"), "base", "v").ok());
    AppendLoser(&engine, /*txn=*/999, {"L"}, &op_lsns);
  }
  ASSERT_EQ(op_lsns.size(), 1u);

  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  EXPECT_EQ(stats.winners, 1u);
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_EQ(stats.undo_records, 1u);
  EXPECT_EQ(stats.unundoable, 0u);
  EXPECT_EQ(Keys(&db, engine.RootId("D")),
            (std::set<std::string>{"base"}));

  // Recovery wrote its undo into the crash epoch's (now archived) WAL:
  // a CLR naming the op it undoes, then the loser's abort record.
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Scan(engine.WalPath(crash_epoch), &records).ok());
  bool saw_clr = false, saw_abort = false;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kClr && rec.txn == 999) {
      saw_clr = true;
      EXPECT_EQ(rec.undoes_lsn, op_lsns[0]);
      EXPECT_EQ(rec.comp.method, "remove");
    }
    if (rec.type == WalRecordType::kAbort && rec.txn == 999) {
      EXPECT_TRUE(saw_clr) << "abort record must follow the CLRs";
      saw_abort = true;
    }
  }
  EXPECT_TRUE(saw_clr);
  EXPECT_TRUE(saw_abort);
}

TEST_F(RecoveryTest, CrashDuringUndoResumesWithoutDoubleUndo) {
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    ASSERT_TRUE(Insert(&db, engine.RootId("D"), "base", "v").ok());
    AppendLoser(&engine, /*txn=*/999, {"L1", "L2"});
  }

  // First recovery attempt dies (simulated) after one CLR: exactly one
  // of the two loser ops is undone, and the CLR recording that fact is
  // on the log.
  {
    Database db;
    StorageEngine engine(Opts());
    RecoveryStats stats;
    RecoveryOptions options;
    options.stop_after_clrs = 1;
    Status st = OpenRecovered(&engine, &db, &stats, options,
                              /*attach_durability=*/false);
    EXPECT_TRUE(st.IsAborted()) << st.ToString();
    EXPECT_EQ(stats.undo_records, 1u);
  }

  // The restart replays history (including the CLR) and undoes only
  // the remaining op — never L2 twice.
  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  EXPECT_EQ(stats.losers, 1u);
  EXPECT_EQ(stats.undo_records, 1u);
  EXPECT_EQ(Keys(&db, engine.RootId("D")),
            (std::set<std::string>{"base"}));

  // And the recovered store keeps working durably.
  ASSERT_TRUE(Insert(&db, engine.RootId("D"), "after", "v").ok());
  EXPECT_EQ(Keys(&db, engine.RootId("D")),
            (std::set<std::string>{"after", "base"}));
}

TEST_F(RecoveryTest, RecoverRefusesAttachedDurability) {
  Database db;
  StorageEngine engine(Opts());
  ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
  // db now logs through the engine; replaying on top would re-log the
  // replay. Recover must refuse rather than corrupt the WAL.
  Status st = Recover(&engine, &db);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace oodb
