// oodb_lint pass tests: each seeded defect class — asymmetric spec,
// mis-declared memo class, diverging lock table, schema rot in the call
// graph — must be caught, and the shipped app schemas must audit clean
// (errors and warnings gate; notes are properties, not defects).

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/call_graph.h"
#include "analysis/corpus.h"
#include "analysis/lock_conformance.h"
#include "analysis/memo_honesty.h"
#include "analysis/spec_soundness.h"
#include "analysis/undo_completeness.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"

namespace oodb {
namespace {

using analysis::AnalysisReport;
using analysis::AnalyzeSchema;
using analysis::AnalyzerOptions;
using analysis::BuildTypeCorpus;
using analysis::CheckLockConformance;
using analysis::CheckMemoHonesty;
using analysis::CheckSpecSoundness;
using analysis::CheckUndoCompleteness;
using analysis::Diagnostic;
using analysis::HonestyOptions;
using analysis::LockConformanceOptions;
using analysis::Severity;
using analysis::TypeCorpus;

Status NoOp(MethodContext&, const ValueList&, Value*) {
  return Status::OK();
}

bool HasDiagnostic(const std::vector<Diagnostic>& diags, Severity severity,
                   const std::string& pass,
                   const std::string& message_substring) {
  for (const Diagnostic& d : diags) {
    if (d.severity == severity && d.pass == pass &&
        d.message.find(message_substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// --- pass 1: spec soundness ------------------------------------------

/// Deliberately order-dependent: r commutes with w only as (r, w).
class AsymmetricSpec : public CommutativitySpec {
 public:
  bool Commutes(const Invocation& a, const Invocation& b) const override {
    return a.method == "r" && b.method == "w";
  }
};

TEST(SpecSoundness, AsymmetricSpecIsCaught) {
  ObjectType type("BadSym", std::make_unique<AsymmetricSpec>());
  Database db;
  db.Register(&type, "r", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  db.Register(&type, "w", NoOp);
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  const auto diags = CheckSpecSoundness(corpus);
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kError, "spec-soundness",
                            "asymmetric"));
}

TEST(SpecSoundness, UnknownMethodLeakIsCaught) {
  ObjectType type("TooOpen", std::make_unique<AlwaysCommutes>());
  Database db;
  db.Register(&type, "r", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  const auto diags = CheckSpecSoundness(corpus);
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kWarning, "spec-soundness",
                            "unknown method"));
}

TEST(SpecSoundness, PrimitiveObserverConflictIsCaught) {
  // Two observers that conflict on a primitive type: conventional
  // read/read locking would have admitted them.
  ObjectType type("Sulky", std::make_unique<NeverCommutes>(),
                  /*primitive=*/true);
  Database db;
  db.Register(&type, "peek", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  const auto diags = CheckSpecSoundness(corpus);
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kWarning, "spec-soundness",
                            "two observers conflict"));
}

TEST(SpecSoundness, SemanticGainOnPrimitiveIsOnlyANote) {
  const TypeCorpus corpus =
      [] {
        Database db;
        Bank::RegisterMethods(&db, BankSemantics::kEscrow);
        return BuildTypeCorpus(EscrowAccountType(), db.registry());
      }();
  const auto diags = CheckSpecSoundness(corpus);
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kNote, "spec-soundness",
                            "beyond the conventional"));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kNote) << d.ToString();
  }
}

// --- pass 2: memo honesty --------------------------------------------

/// Consults hidden state but claims invocation-pair purity.
class LyingStatefulSpec : public CommutativitySpec {
 public:
  explicit LyingStatefulSpec(const bool* gate) : gate_(gate) {}
  bool Commutes(const Invocation& a, const Invocation& b) const override {
    if (a.method == "m" && b.method == "m") return *gate_;
    return false;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kInvocationPair;
  }

 private:
  const bool* gate_;
};

TEST(MemoHonesty, MisdeclaredStateDependentSpecIsCaught) {
  bool gate = true;
  ObjectType type("Liar", std::make_unique<LyingStatefulSpec>(&gate));
  Database db;
  db.Register(&type, "m", NoOp,
              {.calls = {},
               .samples = {{Value(1)}, {Value(2)}},
               .compensations = {}});
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());

  // Without perturbations the lie is invisible (the state is quiet).
  EXPECT_FALSE(HasDiagnostic(CheckMemoHonesty(corpus), Severity::kError,
                             "memo-honesty", "changed"));

  HonestyOptions options;
  options.state_perturbations.push_back([&gate] { gate = !gate; });
  EXPECT_TRUE(HasDiagnostic(CheckMemoHonesty(corpus, options),
                            Severity::kError, "memo-honesty",
                            "kInvocationPair"));
}

/// Parameter-sensitive (keyed) but claims method-pair granularity.
class LyingKeyedSpec : public CommutativitySpec {
 public:
  bool Commutes(const Invocation& a, const Invocation& b) const override {
    if (a.method == "put" && b.method == "put") {
      return !(a.params == b.params);
    }
    return false;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kMethodPair;
  }
};

TEST(MemoHonesty, ParameterDependentMethodPairSpecIsCaught) {
  ObjectType type("KeyedLiar", std::make_unique<LyingKeyedSpec>());
  Database db;
  db.Register(&type, "put", NoOp,
              {.calls = {},
               .samples = {{Value("k1")}, {Value("k2")}},
               .compensations = {}});
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  EXPECT_TRUE(HasDiagnostic(CheckMemoHonesty(corpus), Severity::kError,
                            "memo-honesty", "kMethodPair"));
}

TEST(MemoHonesty, HonestSpecsPassWithPerturbations) {
  Database db;
  Bank::RegisterMethods(&db, BankSemantics::kEscrow);
  HonestyOptions options;
  int dummy = 0;
  options.state_perturbations.push_back([&dummy] { ++dummy; });
  for (const ObjectType* type : db.registry().Types()) {
    const auto diags =
        CheckMemoHonesty(BuildTypeCorpus(type, db.registry()), options);
    for (const Diagnostic& d : diags) {
      EXPECT_EQ(d.severity, Severity::kNote) << d.ToString();
    }
  }
}

// --- pass 3: lock conformance ----------------------------------------

std::unique_ptr<MatrixCommutativity> ReadOnlyMatrix() {
  auto spec = std::make_unique<MatrixCommutativity>();
  spec->SetCommutes("r", "r");
  return spec;
}

TEST(LockConformance, ShippedConfigurationConforms) {
  ObjectType type("Plain", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "r", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  db.Register(&type, "w", NoOp);
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  EXPECT_TRUE(CheckLockConformance(corpus).empty());
}

TEST(LockConformance, DivergingLockTableIsCaught) {
  ObjectType type("Diverge", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "r", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  db.Register(&type, "w", NoOp);
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());

  // Reference says everything commutes: the lock table (driven by the
  // matrix) blocks pairs the reference admits -> lost concurrency.
  AlwaysCommutes permissive;
  LockConformanceOptions options;
  options.reference = &permissive;
  EXPECT_TRUE(HasDiagnostic(CheckLockConformance(corpus, options),
                            Severity::kWarning, "lock-conformance",
                            "blocks"));

  // Reference says nothing commutes: the lock table admits r/r, which
  // the reference declares a conflict -> soundness error.
  NeverCommutes strict;
  options.reference = &strict;
  EXPECT_TRUE(HasDiagnostic(CheckLockConformance(corpus, options),
                            Severity::kError, "lock-conformance",
                            "admits"));
}

TEST(LockConformance, ReferenceInjectionThroughAnalyzer) {
  ObjectType type("Diverge2", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "r", NoOp, {.observer = true, .calls = {}, .samples = {}, .compensations = {}});
  NeverCommutes strict;
  AnalyzerOptions options;
  options.lock_references["Diverge2"] = &strict;
  const AnalysisReport report = AnalyzeSchema("seeded", db, options);
  EXPECT_TRUE(HasDiagnostic(report.diagnostics, Severity::kError,
                            "lock-conformance", "admits"));
  EXPECT_FALSE(report.Clean());
}

// --- pass 4: call graph ----------------------------------------------

TEST(CallGraph, SchemaRotIsCaught) {
  ObjectType caller("Caller", ReadOnlyMatrix());
  ObjectType prim("Prim", ReadOnlyMatrix(), /*primitive=*/true);
  Database db;
  // Dangling type and dangling method.
  db.Register(&caller, "m", NoOp,
              {.calls = {{"Ghost", "g"}, {"Prim", "nope"}},
               .samples = {},
               .compensations = {}});
  // Def 3 violation: a primitive type with outgoing calls.
  db.Register(&prim, "p", NoOp,
              {.calls = {{"Caller", "m"}},
               .samples = {},
               .compensations = {}});
  // Implementation without declared traits.
  db.Register(&caller, "untraced", NoOp);
  // Traits without implementation (stale schema entry).
  db.DeclareTraits(&caller, "removed", {.observer = true, .calls = {}, .samples = {}, .compensations = {}});

  const auto result = analysis::AnalyzeCallGraph(db.registry());
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kError,
                            "call-graph", "type is not registered"));
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kError,
                            "call-graph", "method is not registered"));
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kError,
                            "call-graph", "Def 3"));
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kWarning,
                            "call-graph", "no declared traits"));
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kWarning,
                            "call-graph", "no registered"));
}

TEST(CallGraph, TransitiveSelfReachIsADef5Note) {
  ObjectType a("A", ReadOnlyMatrix());
  ObjectType b("B", ReadOnlyMatrix());
  Database db;
  db.Register(&a, "m", NoOp,
              {.calls = {{"B", "n"}}, .samples = {}, .compensations = {}});
  db.Register(&a, "k", NoOp);
  db.Register(&b, "n", NoOp,
              {.calls = {{"A", "k"}}, .samples = {}, .compensations = {}});

  const auto result = analysis::AnalyzeCallGraph(db.registry());
  EXPECT_TRUE(HasDiagnostic(result.diagnostics, Severity::kNote,
                            "call-graph", "Def 5"));
  bool found = false;
  for (const auto& node : result.nodes) {
    if (node.type_name == "A" && node.method == "m") {
      found = true;
      EXPECT_TRUE(node.def5_site);
      EXPECT_EQ(node.def5_path, "A.m -> B.n -> A.k");
    }
  }
  EXPECT_TRUE(found);
}

// --- pass 5: undo completeness ---------------------------------------

TEST(UndoCompleteness, NakedMutatorIsAnError) {
  ObjectType type("NoUndo", ReadOnlyMatrix());
  Database db;
  // A mutator with neither a compensation list nor an undo_free waiver:
  // a loser transaction's effect would survive recovery.
  db.Register(&type, "w", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {}});
  const TypeCorpus corpus = BuildTypeCorpus(&type, db.registry());
  EXPECT_TRUE(HasDiagnostic(CheckUndoCompleteness(corpus), Severity::kError,
                            "undo-completeness",
                            "would survive crash recovery"));
}

TEST(UndoCompleteness, DeclaredInverseAndWaiverPassClean) {
  ObjectType type("Undoable", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "ins", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {"del"}});
  db.Register(&type, "del", NoOp,
              {.calls = {},
               .samples = {{}},
               .compensations = {"ins"},
               .undo_free = true});  // deleting an absent key is a no-op
  const auto diags =
      CheckUndoCompleteness(BuildTypeCorpus(&type, db.registry()));
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kNote) << d.ToString();
  }
}

TEST(UndoCompleteness, CompensationOnlyMutatorIsANote) {
  ObjectType type("Queueish", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "enq", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {"cancel"}});
  // cancel exists only to undo enq; recovery never undoes undo actions
  // (they replay as CLRs), so the missing compensation is by design.
  db.Register(&type, "cancel", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {}});
  const auto diags =
      CheckUndoCompleteness(BuildTypeCorpus(&type, db.registry()));
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kNote, "undo-completeness",
                            "declared compensation of 'enq'"));
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.severity, Severity::kError) << d.ToString();
  }
}

TEST(UndoCompleteness, BogusCompensationTargetsAreErrors) {
  ObjectType type("BadComp", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "w", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {"ghost"}});
  db.Register(&type, "w2", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {"r"}});
  db.Register(&type, "r", NoOp,
              {.observer = true, .calls = {}, .samples = {{}},
               .compensations = {}});
  const auto diags =
      CheckUndoCompleteness(BuildTypeCorpus(&type, db.registry()));
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kError, "undo-completeness",
                            "not a registered method"));
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kError, "undo-completeness",
                            "is an observer"));
}

TEST(UndoCompleteness, ObserverWithCompensationsIsAWarning) {
  ObjectType type("OddObs", ReadOnlyMatrix());
  Database db;
  db.Register(&type, "r", NoOp,
              {.observer = true, .calls = {}, .samples = {{}},
               .compensations = {"w"}});
  db.Register(&type, "w", NoOp,
              {.calls = {}, .samples = {{}}, .compensations = {"w"}});
  const auto diags =
      CheckUndoCompleteness(BuildTypeCorpus(&type, db.registry()));
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kWarning, "undo-completeness",
                            "nothing to undo"));
}

// --- the shipped schemas ---------------------------------------------

AnalysisReport AuditShipped(const std::string& name) {
  Database db;
  if (name == "bank") {
    Bank::RegisterMethods(&db, BankSemantics::kEscrow);
    Bank::RegisterMethods(&db, BankSemantics::kNameOnly);
    Bank::RegisterMethods(&db, BankSemantics::kReadWrite);
  } else if (name == "document") {
    Document::RegisterMethods(&db);
  } else {
    Encyclopedia::RegisterMethods(&db);
  }
  return AnalyzeSchema(name, db);
}

TEST(ShippedSchemas, AuditClean) {
  for (const std::string name : {"bank", "document", "encyclopedia"}) {
    const AnalysisReport report = AuditShipped(name);
    EXPECT_TRUE(report.Clean())
        << name << ":\n" << analysis::RenderText(report, true);
    EXPECT_EQ(report.errors(), 0u);
    EXPECT_EQ(report.warnings(), 0u);
  }
}

TEST(ShippedSchemas, BpTreeDef5SitesAreReported) {
  const AnalysisReport report = AuditShipped("encyclopedia");
  EXPECT_TRUE(HasDiagnostic(report.diagnostics, Severity::kNote,
                            "call-graph", "Def 5"));
}

TEST(ShippedSchemas, ReportIsDeterministic) {
  for (const std::string name : {"bank", "document", "encyclopedia"}) {
    const AnalysisReport first = AuditShipped(name);
    const AnalysisReport second = AuditShipped(name);
    EXPECT_EQ(analysis::RenderJson(first), analysis::RenderJson(second));
    EXPECT_EQ(analysis::RenderText(first, true),
              analysis::RenderText(second, true));
  }
}

}  // namespace
}  // namespace oodb
