#include "model/type_registry.h"

#include <gtest/gtest.h>

#include <memory>

#include "containers/directory.h"
#include "containers/page_ops.h"
#include "schedule/history_io.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

TEST(TypeRegistryTest, RegisterAndFind) {
  TypeRegistry registry;
  auto type = std::make_unique<ObjectType>(
      "TestTypeA", std::make_unique<NeverCommutes>());
  EXPECT_TRUE(registry.Register(type.get()));
  EXPECT_EQ(registry.Find("TestTypeA"), type.get());
  EXPECT_EQ(registry.Find("Unknown"), nullptr);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TypeRegistryTest, ReRegisteringSamePointerIsIdempotent) {
  TypeRegistry registry;
  auto type = std::make_unique<ObjectType>(
      "TestTypeB", std::make_unique<NeverCommutes>());
  EXPECT_TRUE(registry.Register(type.get()));
  EXPECT_TRUE(registry.Register(type.get()));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TypeRegistryTest, ConflictingNameRefused) {
  TypeRegistry registry;
  auto a = std::make_unique<ObjectType>("SameName",
                                        std::make_unique<NeverCommutes>());
  auto b = std::make_unique<ObjectType>("SameName",
                                        std::make_unique<AlwaysCommutes>());
  EXPECT_TRUE(registry.Register(a.get()));
  EXPECT_FALSE(registry.Register(b.get()));
  EXPECT_EQ(registry.Find("SameName"), a.get());
}

TEST(TypeRegistryTest, NullRefused) {
  TypeRegistry registry;
  EXPECT_FALSE(registry.Register(nullptr));
}

TEST(TypeRegistryTest, NamesSorted) {
  TypeRegistry registry;
  auto b = std::make_unique<ObjectType>("Bee",
                                        std::make_unique<NeverCommutes>());
  auto a = std::make_unique<ObjectType>("Ant",
                                        std::make_unique<NeverCommutes>());
  registry.Register(b.get());
  registry.Register(a.get());
  auto names = registry.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "Ant");
  EXPECT_EQ(names[1], "Bee");
}

TEST(TypeRegistryTest, ContainerTypesAutoRegister) {
  Database db;
  RegisterDirectoryMethods(&db);
  RegisterPageMethods(&db);
  EXPECT_EQ(TypeRegistry::Global().Find("Directory"), DirectoryType());
  EXPECT_EQ(TypeRegistry::Global().Find("Page"), PageObjectType());
}

TEST(TypeRegistryTest, GlobalTypesRoundTripHistory) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("T1", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("insert", {Value("k"), Value("v")}));
                }).ok());
  Result<std::string> dump = HistoryIo::Dump(db.ts());
  ASSERT_TRUE(dump.ok());
  auto loaded = HistoryIo::LoadWithGlobalTypes(*dump);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ValidationReport report = Validator::Validate(loaded->get());
  EXPECT_TRUE(report.oo_serializable);
}

}  // namespace
}  // namespace oodb
