// Sharded-runtime equivalence: the same seeded workload must produce
// the identical committed state and the identical Defs 13/16 verdicts
// whether it runs on one shard or eight, and whether the history is
// recorded live or epoch-batched and replayed. Sharding and epoch
// batching are pure mechanism — any observable divergence is a bug.

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "cc/database.h"
#include "cc/epoch_log.h"
#include "containers/escrow.h"
#include "schedule/validator.h"
#include "util/random.h"

namespace oodb {
namespace {

constexpr int kAccounts = 16;
constexpr int kThreads = 4;
constexpr int kTxnsPerThread = 40;
constexpr int kDepositsPerTxn = 3;

// One transaction's fixed effect set: deposits of `amounts[d]` to keys
// (start + d) % kAccounts, then a balance read of `start`. Precomputed
// from the seed so a deadlock-retry replays the identical effects —
// without this, a retry would re-draw from a live Rng and the committed
// state would depend on the interleaving.
struct TxnPlan {
  uint64_t start = 0;
  int64_t amounts[kDepositsPerTxn] = {};
};

std::vector<TxnPlan> MakePlans(uint64_t seed) {
  std::vector<TxnPlan> plans(size_t(kThreads) * kTxnsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kTxnsPerThread; ++i) {
      Rng rng(seed ^ (uint64_t(t) << 32) ^ uint64_t(i));
      TxnPlan& plan = plans[size_t(t) * kTxnsPerThread + i];
      plan.start = rng.NextBelow(kAccounts);
      for (int d = 0; d < kDepositsPerTxn; ++d) {
        plan.amounts[d] = int64_t(1 + rng.NextBelow(9));
      }
    }
  }
  return plans;
}

struct RunResult {
  std::vector<int64_t> balances;
  uint64_t committed = 0;
  bool oo_serializable = false;
  bool conform = false;
  size_t replayed_actions = 0;
};

/// Runs the seeded escrow workload on `shards` shards in epoch-batched
/// mode, replays the batches into the run's own TransactionSystem
/// (which holds the objects but no actions), and validates.
RunResult RunWorkload(size_t shards, const std::vector<TxnPlan>& plans) {
  DatabaseOptions options;
  options.shards = shards;
  options.history = HistoryMode::kEpochBatched;
  Database db(options);
  HistoryEpochSink sink;
  db.SetEpochSink(&sink);
  RegisterAccountMethods(&db, EscrowAccountType());
  std::vector<ObjectId> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(CreateAccount(&db, EscrowAccountType(),
                                     "A" + std::to_string(i), 100));
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        const TxnPlan& plan = plans[size_t(t) * kTxnsPerThread + i];
        Status st = db.RunTransaction(
            "T" + std::to_string(t) + "." + std::to_string(i),
            [&](MethodContext& txn) {
              for (int d = 0; d < kDepositsPerTxn; ++d) {
                uint64_t idx = (plan.start + uint64_t(d)) % kAccounts;
                OODB_RETURN_IF_ERROR(txn.Call(
                    accounts[idx],
                    Invocation("deposit", {Value(plan.amounts[d])})));
              }
              // The balance read conflicts with deposits, so runs can
              // deadlock (and retry) — the committed effects must not
              // depend on that.
              return txn.Call(accounts[plan.start], Invocation("balance"));
            });
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& w : workers) w.join();
  while (db.AdvanceEpoch() > 0) {
  }

  RunResult result;
  for (ObjectId a : accounts) {
    result.balances.push_back(db.StateOf<AccountState>(a)->balance);
  }
  result.committed = db.counters().committed.load();
  EXPECT_EQ(db.locks().LockCount(), 0u);

  // The run's TransactionSystem has the objects and no actions (epoch
  // mode): replay the batched history into it and validate.
  EXPECT_EQ(db.ts().action_count(), 0u);
  sink.ReplayInto(&db.ts());
  result.replayed_actions = db.ts().action_count();
  ValidationReport report = Validator::Validate(&db.ts());
  result.oo_serializable = report.oo_serializable;
  result.conform = report.conform;
  return result;
}

TEST(ShardedEquivalenceTest, EightShardsMatchSingleShard) {
  const uint64_t seed = 0xFEEDFACE;
  const std::vector<TxnPlan> plans = MakePlans(seed);
  // The interleaving-independent oracle: every transaction commits
  // (retries replay the same plan), so each account's final balance is
  // its initial 100 plus the planned deposits that land on it.
  std::vector<int64_t> expected(kAccounts, 100);
  for (const TxnPlan& plan : plans) {
    for (int d = 0; d < kDepositsPerTxn; ++d) {
      expected[(plan.start + uint64_t(d)) % kAccounts] += plan.amounts[d];
    }
  }

  RunResult one = RunWorkload(1, plans);
  RunResult eight = RunWorkload(8, plans);

  // Identical committed effects, equal to the oracle...
  EXPECT_EQ(one.balances, expected);
  EXPECT_EQ(eight.balances, expected);
  EXPECT_EQ(one.committed, eight.committed);
  EXPECT_EQ(one.committed, uint64_t(kThreads) * kTxnsPerThread);
  // ...a history at least as large as the no-abort baseline (deadlock
  // retries legitimately add aborted attempts to the record, and their
  // count is timing-dependent)...
  const size_t baseline =
      size_t(kThreads) * kTxnsPerThread * (kDepositsPerTxn + 2);
  EXPECT_GE(one.replayed_actions, baseline);
  EXPECT_GE(eight.replayed_actions, baseline);
  // ...and the same verdicts from the validation pipeline.
  EXPECT_TRUE(one.oo_serializable);
  EXPECT_TRUE(eight.oo_serializable);
  EXPECT_TRUE(one.conform);
  EXPECT_TRUE(eight.conform);
}

TEST(ShardedEquivalenceTest, EpochReplayMatchesRecordedHistory) {
  // One deterministic single-threaded workload, run in both history
  // modes; the replayed epoch history must match the live record in
  // size, final state, and verdict.
  auto run = [](HistoryMode mode) {
    DatabaseOptions options;
    options.history = mode;
    Database db(options);
    HistoryEpochSink sink;
    db.SetEpochSink(&sink);
    RegisterAccountMethods(&db, EscrowAccountType());
    ObjectId a =
        CreateAccount(&db, EscrowAccountType(), "A", 100, /*min=*/0);
    ObjectId b =
        CreateAccount(&db, EscrowAccountType(), "B", 100, /*min=*/0);
    EXPECT_TRUE(db.RunTransaction("T1", [&](MethodContext& txn) {
                    OODB_RETURN_IF_ERROR(
                        txn.Call(a, Invocation("deposit", {Value(5)})));
                    return txn.Call(b,
                                    Invocation("withdraw", {Value(7)}));
                  }).ok());
    // An aborting transaction: its compensation must appear in both
    // histories.
    Status st = db.RunTransaction("T2", [&](MethodContext& txn) {
      OODB_RETURN_IF_ERROR(
          txn.Call(a, Invocation("deposit", {Value(11)})));
      return Status::Aborted("voluntary");
    });
    EXPECT_TRUE(st.IsAborted());
    if (mode == HistoryMode::kEpochBatched) {
      while (db.AdvanceEpoch() > 0) {
      }
      sink.ReplayInto(&db.ts());
    }
    ValidationReport report = Validator::Validate(&db.ts());
    return std::tuple(db.ts().action_count(),
                      db.StateOf<AccountState>(a)->balance,
                      db.StateOf<AccountState>(b)->balance,
                      report.oo_serializable, report.conform);
  };
  auto recorded = run(HistoryMode::kRecorded);
  auto replayed = run(HistoryMode::kEpochBatched);
  EXPECT_EQ(recorded, replayed);
}

TEST(ShardedEquivalenceTest, SingleShardDefaultStaysRecorded) {
  // The defaults are the pre-sharding runtime: one shard, recorded
  // history, no epoch log.
  Database db;
  EXPECT_EQ(db.shard_count(), 1u);
  EXPECT_EQ(db.locks().shard_count(), 1u);
  EXPECT_EQ(db.epoch_log(), nullptr);
  EXPECT_EQ(db.AdvanceEpoch(), 0u);
  EXPECT_EQ(db.options().history, HistoryMode::kRecorded);
  EXPECT_STREQ(HistoryModeName(HistoryMode::kRecorded), "recorded");
  EXPECT_STREQ(HistoryModeName(HistoryMode::kEpochBatched),
               "epoch-batched");
}

TEST(ShardedEquivalenceTest, ShardResolutionCapsAndDefaults) {
  DatabaseOptions options;
  options.shards = 1000;  // capped at the mask width
  Database db(options);
  EXPECT_EQ(db.shard_count(), LockManager::kMaxShards);
  EXPECT_EQ(db.locks().shard_count(), LockManager::kMaxShards);

  DatabaseOptions hw;
  hw.shards = 0;  // hardware concurrency, at least one
  Database db2(hw);
  EXPECT_GE(db2.shard_count(), 1u);
  EXPECT_LE(db2.shard_count(), LockManager::kMaxShards);
}

}  // namespace
}  // namespace oodb
