// WAL: append/scan round trips, torn-tail detection, LSN continuity
// across reopen, and the fsync metric.

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "storage/wal.h"

namespace oodb {
namespace {

std::string TempWalPath(const char* tag) {
  std::string path = "/tmp/oodb_wal_test_" + std::string(tag) + "_" +
                     std::to_string(::getpid());
  std::remove(path.c_str());
  return path;
}

WalRecord OpRecord(uint64_t txn, const std::string& root) {
  WalRecord rec;
  rec.type = WalRecordType::kOp;
  rec.txn = txn;
  rec.root = root;
  rec.op = Invocation("insert", {Value("k"), Value("v")});
  rec.has_comp = true;
  rec.comp = Invocation("remove", {Value("k")});
  return rec;
}

TEST(WalTest, AppendScanRoundTripAllTypes) {
  const std::string path = TempWalPath("roundtrip");
  Wal wal;
  ASSERT_TRUE(wal.Create(path, /*first_lsn=*/10).ok());

  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn = 1;
  begin.txn_name = "T1";
  ASSERT_EQ(*wal.Append(begin), 10u);
  ASSERT_EQ(*wal.Append(OpRecord(1, "D")), 11u);
  WalRecord clr;
  clr.type = WalRecordType::kClr;
  clr.txn = 1;
  clr.root = "D";
  clr.comp = Invocation("remove", {Value("k")});
  clr.undoes_lsn = 11;
  ASSERT_EQ(*wal.Append(clr), 12u);
  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 1;
  ASSERT_EQ(*wal.Append(commit), 13u);
  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.txn = 2;
  ASSERT_EQ(*wal.Append(abort), 14u);
  ASSERT_TRUE(wal.Force().ok());
  EXPECT_EQ(wal.next_lsn(), 15u);
  EXPECT_EQ(wal.appended_records(), 5u);
  wal.Close();

  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0, next_lsn = 0;
  ASSERT_TRUE(Wal::Scan(path, &records, &valid_bytes, &next_lsn).ok());
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(next_lsn, 15u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[0].txn_name, "T1");
  EXPECT_EQ(records[1].type, WalRecordType::kOp);
  EXPECT_EQ(records[1].root, "D");
  EXPECT_EQ(records[1].op.method, "insert");
  ASSERT_EQ(records[1].op.params.size(), 2u);
  EXPECT_EQ(records[1].op.params[1].AsString(), "v");
  EXPECT_TRUE(records[1].has_comp);
  EXPECT_EQ(records[1].comp.method, "remove");
  EXPECT_EQ(records[2].type, WalRecordType::kClr);
  EXPECT_EQ(records[2].undoes_lsn, 11u);
  EXPECT_EQ(records[3].type, WalRecordType::kCommit);
  EXPECT_EQ(records[4].type, WalRecordType::kAbort);

  // valid_bytes counts the record region; the 16-byte header precedes it.
  struct ::stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  EXPECT_EQ(valid_bytes + 16, static_cast<uint64_t>(st.st_size));
  std::remove(path.c_str());
}

TEST(WalTest, ScanStopsAtTornTail) {
  const std::string path = TempWalPath("torn");
  Wal wal;
  ASSERT_TRUE(wal.Create(path, 1).ok());
  ASSERT_TRUE(wal.Append(OpRecord(1, "D")).ok());
  ASSERT_TRUE(wal.Append(OpRecord(1, "D")).ok());
  wal.Close();

  uint64_t full_bytes = 0;
  std::vector<WalRecord> records;
  ASSERT_TRUE(Wal::Scan(path, &records, &full_bytes).ok());
  ASSERT_EQ(records.size(), 2u);

  // Chop the last record in half: the crash's torn tail. Offsets from
  // Scan are relative to the 16-byte file header.
  ASSERT_EQ(::truncate(path.c_str(), 16 + full_bytes - 5), 0);
  records.clear();
  uint64_t valid_bytes = 0, next_lsn = 0;
  ASSERT_TRUE(Wal::Scan(path, &records, &valid_bytes, &next_lsn).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(next_lsn, 2u);
  EXPECT_LT(valid_bytes, full_bytes);

  // A flipped payload byte is a CRC mismatch, same cutoff.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(16 + valid_bytes) + 10);
    f.put('\xff');
  }
  records.clear();
  uint64_t valid2 = 0;
  ASSERT_TRUE(Wal::Scan(path, &records, &valid2).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(valid2, valid_bytes);
  std::remove(path.c_str());
}

TEST(WalTest, OpenForAppendResumesAfterTornTail) {
  const std::string path = TempWalPath("resume");
  {
    Wal wal;
    ASSERT_TRUE(wal.Create(path, 1).ok());
    ASSERT_TRUE(wal.Append(OpRecord(1, "D")).ok());
    ASSERT_TRUE(wal.Append(OpRecord(2, "D")).ok());
    wal.Close();
  }
  std::vector<WalRecord> records;
  uint64_t full_bytes = 0;
  ASSERT_TRUE(Wal::Scan(path, &records, &full_bytes).ok());
  ASSERT_EQ(::truncate(path.c_str(), 16 + full_bytes - 3), 0);

  records.clear();
  uint64_t valid_bytes = 0, next_lsn = 0;
  ASSERT_TRUE(Wal::Scan(path, &records, &valid_bytes, &next_lsn).ok());
  ASSERT_EQ(records.size(), 1u);

  Wal wal;
  ASSERT_TRUE(wal.OpenForAppend(path, valid_bytes, next_lsn).ok());
  EXPECT_EQ(*wal.Append(OpRecord(3, "D")), next_lsn);
  wal.Close();

  records.clear();
  ASSERT_TRUE(Wal::Scan(path, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn, 1u);
  EXPECT_EQ(records[1].txn, 3u);  // the torn record is gone for good
  EXPECT_EQ(records[1].lsn, next_lsn);
  std::remove(path.c_str());
}

TEST(WalTest, ScanMissingFileIsNotFound) {
  std::vector<WalRecord> records;
  EXPECT_EQ(Wal::Scan("/tmp/oodb_wal_test_definitely_absent", &records)
                .code(),
            StatusCode::kNotFound);
}

TEST(WalTest, ForceObservesFsyncMetric) {
  const std::string path = TempWalPath("metrics");
  MetricsRegistry registry;
  Wal wal;
  wal.AttachMetrics(&registry);
  ASSERT_TRUE(wal.Create(path, 1).ok());
  ASSERT_TRUE(wal.Append(OpRecord(1, "D")).ok());
  ASSERT_TRUE(wal.Force().ok());
  std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("wal.fsync_ns"), std::string::npos) << json;
  EXPECT_NE(json.find("wal.appends"), std::string::npos) << json;
  wal.Close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oodb
