// Scripted reproductions of the paper's worked examples:
//   Example 1 / Fig 4  — dependency inheritance that stops at commuting
//                        leaf inserts but continues for insert/search,
//   Example 2 / Fig 5  — the oo-transaction tree,
//   Example 4 / Figs 7+8 — the full encyclopedia schedule with four
//                        top-level transactions and the per-object
//                        dependency table.

#include <gtest/gtest.h>

#include "model/extension.h"
#include "schedule/printer.h"
#include "schedule/validator.h"
#include "paper_types.h"

namespace oodb {
namespace {

using testing::BpTreeType;
using testing::EncType;
using testing::ItemType;
using testing::LeafType;
using testing::LinkedListType;
using testing::PageType;

Invocation Ins(const std::string& k) {
  return Invocation("insert", {Value(k)});
}
Invocation Sea(const std::string& k) {
  return Invocation("search", {Value(k)});
}
Invocation App(const std::string& k) {
  return Invocation("append", {Value(k)});
}
Invocation Chg(const std::string& k) {
  return Invocation("change", {Value(k)});
}

void Stamp(TransactionSystem* ts, ActionId a) {
  ts->SetTimestamp(a, ts->NextTimestamp());
}

/// The encyclopedia world of Fig 2 plus the four transactions of
/// Example 4, with a fully serial execution order T1, T2, T3, T4.
struct EncyclopediaWorld {
  TransactionSystem ts;
  ObjectId enc, list, tree, leaf11, page4712, item8, page4713, listpage;
  ActionId t1, t2, t3, t4;
  // Enc-level actions.
  ActionId e1_ins, e2_ins, e2_chg, e3_sea, e4_seq;
  // Leaf-level actions.
  ActionId lf1, lf2, lf3;

  EncyclopediaWorld() {
    enc = ts.AddObject(EncType(), "Enc");
    list = ts.AddObject(LinkedListType(), "LinkedList");
    tree = ts.AddObject(BpTreeType(), "BpTree");
    leaf11 = ts.AddObject(LeafType(), "Leaf11");
    page4712 = ts.AddObject(PageType(), "Page4712");
    item8 = ts.AddObject(ItemType(), "Item8");
    page4713 = ts.AddObject(PageType(), "Page4713");
    listpage = ts.AddObject(PageType(), "ListPage");

    // T1: insert item DBS.
    t1 = ts.BeginTopLevel("T1");
    e1_ins = ts.Call(t1, enc, Ins("DBS"));
    ActionId b1 = ts.Call(e1_ins, tree, Ins("DBS"));
    lf1 = ts.Call(b1, leaf11, Ins("DBS"));
    ActionId r1 = ts.Call(lf1, page4712, Invocation("read"));
    ActionId w1 = ts.Call(lf1, page4712, Invocation("write"));
    ActionId l1 = ts.Call(e1_ins, list, App("DBS"));
    ActionId lw1 = ts.Call(l1, listpage, Invocation("write"));
    Stamp(&ts, r1);
    Stamp(&ts, w1);
    Stamp(&ts, lw1);

    // T2: insert item DBMS, then change it.
    t2 = ts.BeginTopLevel("T2");
    e2_ins = ts.Call(t2, enc, Ins("DBMS"));
    ActionId b2 = ts.Call(e2_ins, tree, Ins("DBMS"));
    lf2 = ts.Call(b2, leaf11, Ins("DBMS"));
    ActionId r2 = ts.Call(lf2, page4712, Invocation("read"));
    ActionId w2 = ts.Call(lf2, page4712, Invocation("write"));
    ActionId l2 = ts.Call(e2_ins, list, App("DBMS"));
    ActionId lw2 = ts.Call(l2, listpage, Invocation("write"));
    e2_chg = ts.Call(t2, enc, Chg("DBMS"));
    ActionId i2 = ts.Call(e2_chg, item8, Chg("DBMS"));
    ActionId iw2 = ts.Call(i2, page4713, Invocation("write"));
    Stamp(&ts, r2);
    Stamp(&ts, w2);
    Stamp(&ts, lw2);
    Stamp(&ts, iw2);

    // T3: search DBS.
    t3 = ts.BeginTopLevel("T3");
    e3_sea = ts.Call(t3, enc, Sea("DBS"));
    ActionId b3 = ts.Call(e3_sea, tree, Sea("DBS"));
    lf3 = ts.Call(b3, leaf11, Sea("DBS"));
    ActionId r3 = ts.Call(lf3, page4712, Invocation("read"));
    Stamp(&ts, r3);

    // T4: read the items sequentially.
    t4 = ts.BeginTopLevel("T4");
    e4_seq = ts.Call(t4, enc, Invocation("readSeq"));
    ActionId l4 = ts.Call(e4_seq, list, Invocation("readSeq"));
    ActionId lr4 = ts.Call(l4, listpage, Invocation("read"));
    ActionId i4 = ts.Call(l4, item8, Invocation("read"));
    ActionId ir4 = ts.Call(i4, page4713, Invocation("read"));
    Stamp(&ts, lr4);
    Stamp(&ts, ir4);
  }
};

TEST(PaperExample1, CommutingInsertsStopInheritance) {
  // Fig 4, T1/T2: the Page4712 dependency between the two inserts is
  // inherited to Leaf11, where insert(DBS) and insert(DBMS) commute:
  // "The dependency can be neglected at BpTree and at Enc."
  EncyclopediaWorld w;
  ValidationReport report = Validator::Validate(&w.ts);
  ASSERT_TRUE(report.oo_serializable) << report.Summary();

  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());
  const ObjectSchedule& leaf = engine.ForObject(w.leaf11);
  // Inherited to the leaf...
  EXPECT_TRUE(leaf.action_deps.HasEdge(w.lf1.value, w.lf2.value));
  // ...but not beyond: no T1 -> T2 at the top level.
  EXPECT_FALSE(engine.TopLevelOrder().HasEdge(w.t1.value, w.t2.value));
  EXPECT_GE(engine.stats().stopped_inheritance, 1u);
}

TEST(PaperExample1, ConflictingSearchInheritsToTop) {
  // Fig 4, T3(/T4 in the paper's numbering): insert(DBS) and search(DBS)
  // access the same key; the dependency is inherited all the way up.
  EncyclopediaWorld w;
  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());
  const ObjectSchedule& leaf = engine.ForObject(w.leaf11);
  EXPECT_TRUE(leaf.action_deps.HasEdge(w.lf1.value, w.lf3.value));
  EXPECT_TRUE(leaf.txn_deps.EdgeCount() > 0);
  EXPECT_TRUE(engine.TopLevelOrder().HasEdge(w.t1.value, w.t3.value));
}

TEST(PaperExample4, LinkedListAndEncDependencies) {
  // Fig 8's last rows: the readSeq of T4 depends on the appends/changes
  // of T1 and T2 at LinkedList and Enc.
  EncyclopediaWorld w;
  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());

  // At Enc: insert/change before readSeq (conflicting, inherited from
  // the list page and Item8's page).
  const ObjectSchedule& enc = engine.ForObject(w.enc);
  EXPECT_TRUE(enc.action_deps.HasEdge(w.e1_ins.value, w.e4_seq.value));
  EXPECT_TRUE(enc.action_deps.HasEdge(w.e2_ins.value, w.e4_seq.value));
  // The change(DBMS) -> readSeq dependency flows through Item8, whose
  // callers live on *different* objects (Enc and LinkedList): it is
  // recorded as an added action dependency (Def 15) at Enc, pointing to
  // the LinkedList.readSeq action.
  EXPECT_GE(enc.added_deps.EdgeCount(), 1u);
  bool found_added = false;
  for (Digraph::NodeId n : enc.added_deps.Nodes()) {
    if (n == w.e2_chg.value &&
        !enc.added_deps.Successors(n).empty()) {
      found_added = true;
    }
  }
  EXPECT_TRUE(found_added);

  // Inherited to the top: T1 -> T4 and T2 -> T4.
  EXPECT_TRUE(engine.TopLevelOrder().HasEdge(w.t1.value, w.t4.value));
  EXPECT_TRUE(engine.TopLevelOrder().HasEdge(w.t2.value, w.t4.value));
  // But not T1 -> T2: their footprints commute everywhere.
  EXPECT_FALSE(engine.TopLevelOrder().HasEdge(w.t1.value, w.t2.value));
}

TEST(PaperExample4, WholeScheduleOoSerializable) {
  EncyclopediaWorld w;
  ValidationReport report = Validator::Validate(&w.ts);
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conventionally_serializable);
  EXPECT_TRUE(report.conform);
  // A valid serialization order exists and places T4 after T1 and T2.
  ASSERT_EQ(report.serialization_order.size(), 4u);
  auto pos = [&](ActionId t) {
    for (size_t i = 0; i < report.serialization_order.size(); ++i) {
      if (report.serialization_order[i] == t) return i;
    }
    return size_t{99};
  };
  EXPECT_LT(pos(w.t1), pos(w.t4));
  EXPECT_LT(pos(w.t2), pos(w.t4));
  EXPECT_LT(pos(w.t1), pos(w.t3));
}

TEST(PaperExample4, DependencyTableRendersAllObjects) {
  // The Fig 8 table, produced mechanically.
  EncyclopediaWorld w;
  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());
  std::string table = SchedulePrinter::DependencyTable(w.ts, engine);
  EXPECT_NE(table.find("Page4712"), std::string::npos);
  EXPECT_NE(table.find("Leaf11"), std::string::npos);
  EXPECT_NE(table.find("BpTree"), std::string::npos);
  EXPECT_NE(table.find("Item8"), std::string::npos);
  EXPECT_NE(table.find("LinkedList"), std::string::npos);
  EXPECT_NE(table.find("Enc"), std::string::npos);
  EXPECT_NE(table.find("(top-level)"), std::string::npos);
}

TEST(PaperExample2, TransactionTreeShape) {
  // Fig 5: an oo-transaction is a tree; precedence is the left-to-right
  // order of arcs.
  EncyclopediaWorld w;
  const ActionRecord& root = w.ts.action(w.t2);
  ASSERT_EQ(root.children.size(), 2u);  // insert(DBMS), change(DBMS)
  EXPECT_TRUE(w.ts.MustPrecede(root.children[0], root.children[1]));

  std::string tree = SchedulePrinter::TransactionTree(w.ts, w.t2);
  EXPECT_NE(tree.find("T2"), std::string::npos);
  EXPECT_NE(tree.find("Enc.insert(DBMS)"), std::string::npos);
  EXPECT_NE(tree.find("Enc.change(DBMS)"), std::string::npos);
  EXPECT_NE(tree.find("Leaf11.insert(DBMS)"), std::string::npos);
  EXPECT_NE(tree.find("Page4712.write()"), std::string::npos);
}

TEST(PaperExample3, BLinkRearrangeEndToEnd) {
  // Section 2's schedule: Node6.insert -> Leaf11.insert ->
  // Leaf12.insert -> Node6.rearrange, validated end to end through the
  // Def 5 extension.
  TransactionSystem ts;
  ObjectId node6 = ts.AddObject(LeafType(), "Node6");
  ObjectId leaf11 = ts.AddObject(LeafType(), "Leaf11");
  ObjectId leaf12 = ts.AddObject(LeafType(), "Leaf12");
  ObjectId page = ts.AddObject(PageType(), "Page");

  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node6, Ins("k"));
  ActionId li = ts.Call(ins, leaf11, Ins("k"));
  ActionId wi = ts.Call(li, page, Invocation("write"));
  ActionId li2 = ts.Call(ins, leaf12, Ins("k"));
  ActionId wi2 = ts.Call(li2, page, Invocation("write"));
  ActionId re = ts.Call(li2, node6, Invocation("rearrange"));
  ActionId wr = ts.Call(re, page, Invocation("write"));
  Stamp(&ts, wi);
  Stamp(&ts, wi2);
  Stamp(&ts, wr);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_EQ(report.extension.cycles_broken, 1u);
  EXPECT_GE(report.extension.virtual_actions, 1u);
}

}  // namespace
}  // namespace oodb
