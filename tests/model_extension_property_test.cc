// Property tests for the Def 5 extension on randomly generated systems
// with injected same-object call cycles.

#include <gtest/gtest.h>

#include "model/extension.h"
#include "util/random.h"
#include "paper_types.h"

namespace oodb {
namespace {

using testing::LeafType;

struct RandomSystem {
  std::unique_ptr<TransactionSystem> ts;
  size_t original_actions = 0;
};

/// Builds `num_txns` random call trees over `num_objects` objects; each
/// action picks a random parent (possibly creating same-object
/// revisits along its ancestor chain).
RandomSystem BuildRandom(uint64_t seed) {
  RandomSystem out;
  out.ts = std::make_unique<TransactionSystem>();
  TransactionSystem& ts = *out.ts;
  Rng rng(seed);
  size_t num_objects = 2 + rng.NextBelow(4);
  std::vector<ObjectId> objects;
  for (size_t i = 0; i < num_objects; ++i) {
    objects.push_back(
        ts.AddObject(LeafType(), "O" + std::to_string(i)));
  }
  size_t num_txns = 1 + rng.NextBelow(3);
  for (size_t t = 0; t < num_txns; ++t) {
    ActionId top = ts.BeginTopLevel("T" + std::to_string(t + 1));
    std::vector<ActionId> nodes{top};
    size_t actions = 3 + rng.NextBelow(8);
    for (size_t i = 0; i < actions; ++i) {
      ActionId parent = nodes[rng.NextBelow(nodes.size())];
      ObjectId obj = objects[rng.NextBelow(objects.size())];
      nodes.push_back(ts.Call(
          parent, obj,
          Invocation("insert",
                     {Value("k" + std::to_string(rng.NextBelow(5)))})));
    }
  }
  out.original_actions = ts.action_count();
  return out;
}

class ExtensionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExtensionProperty, ExtendEstablishesAndPreservesInvariants) {
  RandomSystem sys = BuildRandom(GetParam());
  TransactionSystem& ts = *sys.ts;

  size_t offenders = SystemExtender::FindCycleActions(ts).size();
  ExtensionStats stats = SystemExtender::Extend(&ts);

  // Every offender resolved; none remain.
  EXPECT_EQ(stats.cycles_broken, offenders);
  EXPECT_FALSE(SystemExtender::NeedsExtension(ts));
  EXPECT_EQ(stats.virtual_objects, stats.cycles_broken);

  // Growth accounting: new actions are exactly the virtual duplicates.
  EXPECT_EQ(ts.action_count(),
            sys.original_actions + stats.virtual_actions);

  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    const ActionRecord& rec = ts.action(ActionId(i));
    if (i < sys.original_actions) {
      EXPECT_FALSE(rec.is_virtual);
      // Original call edges (parents) are never rewired.
      if (rec.parent.valid()) {
        EXPECT_LT(rec.parent.value, sys.original_actions);
      }
    } else {
      // Duplicates: virtual, childless, called by their original, same
      // invocation, on a virtual object.
      EXPECT_TRUE(rec.is_virtual);
      EXPECT_TRUE(rec.children.empty());
      ASSERT_TRUE(rec.original.valid());
      EXPECT_EQ(rec.parent, rec.original);
      EXPECT_EQ(rec.invocation, ts.action(rec.original).invocation);
      EXPECT_TRUE(ts.object(rec.object).is_virtual);
    }
  }

  // No object holds both an action and one of its proper ancestors.
  for (ObjectId o : ts.Objects()) {
    const auto& acts = ts.ActionsOn(o);
    for (ActionId a : acts) {
      for (ActionId b : acts) {
        if (a == b) continue;
        EXPECT_FALSE(ts.CallsTransitively(a, b))
            << ts.Describe(a) << " is an ancestor of " << ts.Describe(b)
            << " on " << ts.object(o).name;
      }
    }
  }

  // Idempotence.
  ExtensionStats again = SystemExtender::Extend(&ts);
  EXPECT_EQ(again.cycles_broken, 0u);
  EXPECT_EQ(again.virtual_actions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

}  // namespace
}  // namespace oodb
