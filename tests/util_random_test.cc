#include "util/random.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace oodb {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator z(10, 0.0, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.Next()];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c / 20000.0, 0.1, 0.03);
  }
}

TEST(ZipfTest, SkewedWhenThetaHigh) {
  ZipfGenerator z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.Next()];
  // Rank 0 must dominate rank 500 heavily.
  EXPECT_GT(counts[0], 1000);
  EXPECT_LT(counts[500], counts[0] / 10);
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator z(50, 0.7, 3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 50u);
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfGenerator z(1, 0.5, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Next(), 0u);
}

}  // namespace
}  // namespace oodb
