#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <set>
#include <vector>

namespace oodb {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng r(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePermutes) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator z(10, 0.0, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.Next()];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    (void)k;
    EXPECT_NEAR(c / 20000.0, 0.1, 0.03);
  }
}

TEST(ZipfTest, SkewedWhenThetaHigh) {
  ZipfGenerator z(1000, 0.99, 5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.Next()];
  // Rank 0 must dominate rank 500 heavily.
  EXPECT_GT(counts[0], 1000);
  EXPECT_LT(counts[500], counts[0] / 10);
}

TEST(ZipfTest, ValuesInRange) {
  ZipfGenerator z(50, 0.7, 3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 50u);
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfGenerator z(1, 0.5, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Next(), 0u);
}

// Pearson chi-square statistic against per-key expected counts.
double ChiSquare(const std::map<uint64_t, int>& counts, uint64_t n,
                 int draws, const std::function<double(uint64_t)>& pmf) {
  double stat = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    double expected = pmf(k) * draws;
    auto it = counts.find(k);
    double observed = it == counts.end() ? 0.0 : it->second;
    stat += (observed - expected) * (observed - expected) / expected;
  }
  return stat;
}

// The exact pmf induced by the YCSB map u -> key: keys 0 and 1 get
// direct slices of [0,1), everything past (1 + 0.5^theta)/zeta(n) goes
// through the continuous inverse k = floor(n * (eta*u - eta + 1)^alpha),
// whose per-key mass is the length of the preimage interval. This is
// what the generator is *supposed* to emit (the YCSB approximation of
// Zipf), so a chi-square against it tests the RNG and the transform,
// not the approximation error.
std::vector<double> YcsbZipfPmf(uint64_t n, double theta) {
  double zetan = 0.0;
  for (uint64_t k = 1; k <= n; ++k) zetan += 1.0 / std::pow(double(k), theta);
  double zeta2 = 1.0 + std::pow(0.5, theta);
  double eta = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
               (1.0 - zeta2 / zetan);
  double u_lo = zeta2 / zetan;  // below: direct slices for keys 0, 1
  std::vector<double> pmf(n, 0.0);
  pmf[0] = 1.0 / zetan;
  pmf[1] = std::pow(0.5, theta) / zetan;
  // u at which the continuous inverse crosses key k (increasing in k).
  auto u_at = [&](uint64_t k) {
    return 1.0 + (std::pow(double(k) / double(n), 1.0 - theta) - 1.0) / eta;
  };
  for (uint64_t k = 0; k < n; ++k) {
    double lo = std::max(u_at(k), u_lo);
    double hi = std::min(u_at(k + 1), 1.0);
    if (hi > lo) pmf[k] += hi - lo;
  }
  return pmf;
}

TEST(ZipfTest, ChiSquareAgainstInducedPmf) {
  const uint64_t n = 20;
  const double theta = 0.9;
  const int draws = 200000;
  ZipfGenerator z(n, theta, 77);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < draws; ++i) ++counts[z.Next()];
  std::vector<double> pmf = YcsbZipfPmf(n, theta);
  double stat =
      ChiSquare(counts, n, draws, [&](uint64_t k) { return pmf[k]; });
  // 19 degrees of freedom; the 0.999 quantile is ~43.8.
  EXPECT_LT(stat, 43.8) << "chi-square " << stat;
  // And the approximation itself must still be recognisably Zipf: the
  // head keys carry the exact harmonic weights.
  double zetan = 0.0;
  for (uint64_t k = 1; k <= n; ++k) zetan += 1.0 / std::pow(double(k), theta);
  EXPECT_NEAR(double(counts[0]) / draws, 1.0 / zetan, 0.01);
  EXPECT_NEAR(double(counts[1]) / draws, std::pow(0.5, theta) / zetan, 0.01);
  for (uint64_t k = 1; k < n; ++k) {
    EXPECT_GE(pmf[k - 1], pmf[k] - 1e-12) << "pmf not non-increasing at " << k;
  }
}

TEST(HotSetTest, ValuesInRange) {
  HotSetGenerator g(100, 10, 0.9, 3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(g.Next(), 100u);
}

TEST(HotSetTest, ClampsDegenerateParameters) {
  HotSetGenerator all_hot(10, 50, 2.0, 3);  // hot set clamped to n
  EXPECT_EQ(all_hot.hot_keys(), 10u);
  EXPECT_EQ(all_hot.hot_op_fraction(), 1.0);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(all_hot.Next(), 10u);
  HotSetGenerator cold_only(10, 2, -1.0, 3);
  EXPECT_EQ(cold_only.hot_op_fraction(), 0.0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t k = cold_only.Next();
    EXPECT_GE(k, 2u);
    EXPECT_LT(k, 10u);
  }
}

TEST(HotSetTest, HotShareMatchesFraction) {
  const int draws = 100000;
  HotSetGenerator g(1000, 100, 0.9, 11);
  int hot = 0;
  for (int i = 0; i < draws; ++i) {
    if (g.Next() < 100) ++hot;
  }
  EXPECT_NEAR(hot / double(draws), 0.9, 0.01);
}

TEST(HotSetTest, ChiSquareUniformWithinEachTier) {
  // Within the hot set and within the cold set the distribution is
  // uniform; chi-square both tiers against their conditional pmf.
  const uint64_t n = 40, hot_keys = 8;
  const double frac = 0.8;
  const int draws = 200000;
  HotSetGenerator g(n, hot_keys, frac, 23);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < draws; ++i) ++counts[g.Next()];
  double stat = ChiSquare(counts, n, draws, [&](uint64_t k) {
    return k < hot_keys ? frac / double(hot_keys)
                        : (1.0 - frac) / double(n - hot_keys);
  });
  // 39 degrees of freedom; the 0.999 quantile is ~72.1.
  EXPECT_LT(stat, 72.1) << "chi-square " << stat;
}

TEST(HotSetTest, Deterministic) {
  HotSetGenerator a(100, 10, 0.9, 5), b(100, 10, 0.9, 5);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace oodb
