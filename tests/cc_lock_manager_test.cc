#include "cc/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "paper_types.h"

namespace oodb {
namespace {

using testing::LeafType;
using testing::PageType;

Invocation Ins(const std::string& k) {
  return Invocation("insert", {Value(k)});
}

struct World {
  TransactionSystem ts;
  ObjectId leaf, page;
  ActionId t1, t2;

  World() {
    leaf = ts.AddObject(LeafType(), "Leaf");
    page = ts.AddObject(PageType(), "Page");
    t1 = ts.BeginTopLevel("T1");
    t2 = ts.BeginTopLevel("T2");
  }
};

TEST(LockManagerTest, CommutingLocksGrantImmediately) {
  World w;
  LockManager lm(&w.ts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("y"));
  EXPECT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  EXPECT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("y"), b, w.t2).ok());
  EXPECT_EQ(lm.LockCount(), 2u);
  EXPECT_EQ(lm.wait_count(), 0u);
}

TEST(LockManagerTest, ConflictBlocksUntilRelease) {
  World w;
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(2000);
  LockManager lm(&w.ts, opts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(w.leaf, LeafType(), Ins("x"), b, w.t2);
    granted = st.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  // T1 completes its action and then commits: lock unwinds.
  lm.OnActionComplete(a, w.t1);
  lm.OnActionComplete(w.t1, ActionId());
  waiter.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GE(lm.wait_count(), 1u);
}

TEST(LockManagerTest, SphereAllowsDescendants) {
  // A child action may acquire a mode conflicting with a lock held by
  // its own ancestor.
  World w;
  LockManager lm(&w.ts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  ActionId split = w.ts.Call(a, w.leaf, Invocation("rearrange"));
  EXPECT_TRUE(lm.Acquire(w.leaf, LeafType(), Invocation("rearrange"), split,
                         w.t1)
                  .ok());
}

TEST(LockManagerTest, PassUpKeepsBlockingNonDescendants) {
  // After the child completes, the parent retains the semantic lock:
  // conflicting outsiders still wait; commuting outsiders pass.
  World w;
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(100);
  LockManager lm(&w.ts, opts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  lm.OnActionComplete(a, w.t1);  // lock now retained by T1
  EXPECT_EQ(lm.LockCount(), 1u);

  // Commuting request: granted.
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("y"));
  EXPECT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("y"), b, w.t2).ok());
  // Conflicting request: times out (T1 never commits in this test).
  ActionId c = w.ts.Call(w.t2, w.leaf, Ins("x"));
  Status st = lm.Acquire(w.leaf, LeafType(), Ins("x"), c, w.t2);
  EXPECT_TRUE(st.IsDeadlock());  // timeout surfaces as deadlock
}

TEST(LockManagerTest, TopLevelCompletionReleasesEverything) {
  World w;
  LockManager lm(&w.ts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId p = w.ts.Call(a, w.page, Invocation("write"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  ASSERT_TRUE(
      lm.Acquire(w.page, PageType(), Invocation("write"), p, w.t1).ok());
  // p completes -> its lock passes to a; the page lock is owned by p.
  lm.OnActionComplete(p, a);
  EXPECT_EQ(lm.LockCount(), 2u);
  // a completes -> p's page lock is released, a's leaf lock passes to T1.
  lm.OnActionComplete(a, w.t1);
  EXPECT_EQ(lm.LockCount(), 1u);
  // Commit.
  lm.OnActionComplete(w.t1, ActionId());
  EXPECT_EQ(lm.LockCount(), 0u);
}

TEST(LockManagerTest, EarlyPageLockReleaseIsTheOpenNestedWin) {
  // Two transactions write the same page under commuting leaf inserts:
  // T2's page write must be granted as soon as T1's *leaf insert*
  // completes, long before T1 commits.
  World w;
  LockManager lm(&w.ts);
  ActionId a1 = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId p1 = w.ts.Call(a1, w.page, Invocation("write"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a1, w.t1).ok());
  ASSERT_TRUE(
      lm.Acquire(w.page, PageType(), Invocation("write"), p1, w.t1).ok());
  lm.OnActionComplete(p1, a1);
  lm.OnActionComplete(a1, w.t1);  // leaf insert done; page lock gone

  ActionId a2 = w.ts.Call(w.t2, w.leaf, Ins("y"));
  ActionId p2 = w.ts.Call(a2, w.page, Invocation("write"));
  EXPECT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("y"), a2, w.t2).ok());
  EXPECT_TRUE(
      lm.Acquire(w.page, PageType(), Invocation("write"), p2, w.t2).ok());
  EXPECT_EQ(lm.wait_count(), 0u);  // nobody ever blocked
}

TEST(LockManagerTest, FlatHoldAtTopBlocksUntilCommit) {
  // The same scenario under flat 2PL (hold_at_top): T2 must wait.
  World w;
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(100);
  LockManager lm(&w.ts, opts);
  ActionId a1 = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId p1 = w.ts.Call(a1, w.page, Invocation("write"));
  ASSERT_TRUE(lm.Acquire(w.page, PageType(), Invocation("write"), p1, w.t1,
                         LockSemantics::kCommutativity,
                         /*hold_at_top=*/true)
                  .ok());
  lm.OnActionComplete(p1, a1);
  lm.OnActionComplete(a1, w.t1);

  ActionId a2 = w.ts.Call(w.t2, w.leaf, Ins("y"));
  ActionId p2 = w.ts.Call(a2, w.page, Invocation("write"));
  Status st = lm.Acquire(w.page, PageType(), Invocation("write"), p2, w.t2,
                         LockSemantics::kCommutativity,
                         /*hold_at_top=*/true);
  EXPECT_TRUE(st.IsDeadlock());  // would wait for T1's commit; times out
}

TEST(LockManagerTest, ExclusiveSemanticsConflictEvenWhenCommuting) {
  World w;
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(100);
  LockManager lm(&w.ts, opts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("y"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1,
                         LockSemantics::kExclusive, true)
                  .ok());
  Status st = lm.Acquire(w.leaf, LeafType(), Ins("y"), b, w.t2,
                         LockSemantics::kExclusive, true);
  EXPECT_TRUE(st.IsDeadlock());
}

TEST(LockManagerTest, DeadlockDetectedOnCycle) {
  // T1 holds leaf.x, T2 holds page.write; T1 requests page.write (waits
  // on T2), T2 requests leaf.x -> cycle -> kDeadlock for T2.
  World w;
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(5000);
  LockManager lm(&w.ts, opts);
  ActionId a1 = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ActionId b2 = w.ts.Call(w.t2, w.page, Invocation("write"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a1, w.t1).ok());
  ASSERT_TRUE(
      lm.Acquire(w.page, PageType(), Invocation("write"), b2, w.t2).ok());

  std::atomic<bool> t1_done{false};
  Status t1_status;
  std::thread t1_thread([&] {
    ActionId p1 = w.ts.Call(w.t1, w.page, Invocation("write"));
    t1_status = lm.Acquire(w.page, PageType(), Invocation("write"), p1,
                           w.t1);
    t1_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(t1_done.load());

  ActionId l2 = w.ts.Call(w.t2, w.leaf, Ins("x"));
  Status t2_status = lm.Acquire(w.leaf, LeafType(), Ins("x"), l2, w.t2);
  EXPECT_TRUE(t2_status.IsDeadlock());
  EXPECT_GE(lm.deadlock_count(), 1u);

  // T2 aborts: releases its locks; T1 proceeds.
  lm.ReleaseAllHeldBy(w.t2);
  lm.ReleaseAllHeldBy(b2);
  t1_thread.join();
  EXPECT_TRUE(t1_status.ok());
}

TEST(LockManagerTest, WaitDieYoungerRequesterDies) {
  World w;  // t1 created before t2: t1 is older
  LockManagerOptions opts;
  opts.deadlock_policy = DeadlockPolicy::kWaitDie;
  LockManager lm(&w.ts, opts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("x"));
  Status st = lm.Acquire(w.leaf, LeafType(), Ins("x"), b, w.t2);
  EXPECT_TRUE(st.IsDeadlock());
  EXPECT_NE(st.message().find("wait-die"), std::string::npos);
  EXPECT_EQ(lm.deadlock_count(), 1u);
}

TEST(LockManagerTest, WaitDieOlderRequesterWaits) {
  World w;
  LockManagerOptions opts;
  opts.deadlock_policy = DeadlockPolicy::kWaitDie;
  opts.wait_timeout = std::chrono::milliseconds(2000);
  LockManager lm(&w.ts, opts);
  // Younger t2 holds; older t1 must wait, then get the lock.
  ActionId b = w.ts.Call(w.t2, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), b, w.t2).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
    granted = lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.OnActionComplete(b, w.t2);
  lm.OnActionComplete(w.t2, ActionId());
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, WaitDieAllowsIntraTransactionWaits) {
  // A parallel sibling of the same transaction is neither older nor
  // younger: the wait is allowed and resolves by pass-up.
  World w;
  LockManagerOptions opts;
  opts.deadlock_policy = DeadlockPolicy::kWaitDie;
  opts.wait_timeout = std::chrono::milliseconds(2000);
  LockManager lm(&w.ts, opts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"), false);
  ActionId b = w.ts.Call(w.t1, w.leaf, Ins("x"), false);
  w.ts.SetProcess(b, 1);
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    granted = lm.Acquire(w.leaf, LeafType(), Ins("x"), b, w.t1).ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.OnActionComplete(a, w.t1);  // pass-up: holder becomes the ancestor
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(LockManagerTest, PolicyNames) {
  EXPECT_STREQ(DeadlockPolicyName(DeadlockPolicy::kDetect), "detect");
  EXPECT_STREQ(DeadlockPolicyName(DeadlockPolicy::kWaitDie), "wait-die");
}

TEST(LockManagerTest, ReleaseAllHeldByCleansUp) {
  World w;
  LockManager lm(&w.ts);
  ActionId a = w.ts.Call(w.t1, w.leaf, Ins("x"));
  ASSERT_TRUE(lm.Acquire(w.leaf, LeafType(), Ins("x"), a, w.t1).ok());
  lm.OnActionComplete(a, w.t1);
  lm.ReleaseAllHeldBy(w.t1);
  EXPECT_EQ(lm.LockCount(), 0u);
  // Second release is a no-op.
  lm.ReleaseAllHeldBy(w.t1);
  EXPECT_EQ(lm.LockCount(), 0u);
}

}  // namespace
}  // namespace oodb
