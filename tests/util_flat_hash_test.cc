#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace oodb {
namespace {

TEST(FlatSet64Test, InsertContainsAndDedup) {
  FlatSet64 s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));
  EXPECT_TRUE(s.insert(0));  // zero is an ordinary key, not a sentinel
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(42));
  EXPECT_TRUE(s.contains(0));
  EXPECT_FALSE(s.contains(7));
  EXPECT_EQ(s.count(42), 1u);
  EXPECT_EQ(s.count(7), 0u);
}

TEST(FlatSet64Test, IteratesInInsertionOrderAcrossGrowth) {
  FlatSet64 s;
  std::vector<uint64_t> inserted;
  std::mt19937_64 rng(1234);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng();
    if (s.insert(v)) inserted.push_back(v);
  }
  std::vector<uint64_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen, inserted);
}

TEST(FlatSet64Test, MatchesUnorderedSetUnderRandomOps) {
  FlatSet64 s;
  std::unordered_set<uint64_t> ref;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng() % 4096;  // force collisions and duplicates
    EXPECT_EQ(s.insert(v), ref.insert(v).second);
  }
  EXPECT_EQ(s.size(), ref.size());
  for (uint64_t v = 0; v < 4096; ++v) {
    EXPECT_EQ(s.contains(v), ref.count(v) > 0) << v;
  }
}

TEST(FlatSet64Test, ReserveAndClear) {
  FlatSet64 s;
  s.reserve(1000);
  for (uint64_t v = 0; v < 1000; ++v) s.insert(v);
  EXPECT_EQ(s.size(), 1000u);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.insert(5));
}

TEST(FlatMap64Test, OperatorIndexDefaultConstructs) {
  FlatMap64<uint8_t> m;
  // Absent keys read as value-initialized — the DFS color maps rely on
  // 0 meaning "white" with no seeding pass.
  EXPECT_EQ(m[17], 0);
  m[17] = 3;
  EXPECT_EQ(m[17], 3);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_NE(m.find(17), nullptr);
  EXPECT_EQ(m.find(18), nullptr);
}

TEST(FlatMap64Test, MatchesUnorderedMapUnderRandomOps) {
  FlatMap64<uint32_t> m;
  std::unordered_map<uint64_t, uint32_t> ref;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t k = rng() % 2048;
    uint32_t v = uint32_t(rng());
    m[k] = v;
    ref[k] = v;
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const uint32_t* found = m.find(k);
    ASSERT_NE(found, nullptr) << k;
    EXPECT_EQ(*found, v) << k;
  }
}

}  // namespace
}  // namespace oodb
