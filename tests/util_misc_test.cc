// Coverage for the small utilities: logging, stopwatch, and the lock
// manager's contention report.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cc/lock_manager.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "paper_types.h"

namespace oodb {
namespace {

TEST(LoggingTest, LevelGating) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kNone);
  EXPECT_EQ(GetLogLevel(), LogLevel::kNone);
  OODB_ERROR("suppressed at kNone");  // must not crash
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  OODB_DEBUG("emitted at kDebug, value=" << 42);
  SetLogLevel(original);
}

TEST(LoggingTest, ConcurrentLoggingIsSafe) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kNone);  // gate off: exercise the macro path only
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        OODB_INFO("thread message " << i);
      }
    });
  }
  for (auto& t : threads) t.join();
  SetLogLevel(original);
  SUCCEED();
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  uint64_t ns = sw.ElapsedNanos();
  EXPECT_GE(ns, 15'000'000u);
  EXPECT_LT(ns, 2'000'000'000u);
  EXPECT_NEAR(sw.ElapsedSeconds(), double(sw.ElapsedNanos()) * 1e-9, 0.01);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedNanos(), 15'000'000u);
}

TEST(ContentionReportTest, HottestObjectsRanked) {
  TransactionSystem ts;
  ObjectId hot = ts.AddObject(testing::LeafType(), "Hot");
  ObjectId cold = ts.AddObject(testing::LeafType(), "Cold");
  LockManagerOptions opts;
  opts.wait_timeout = std::chrono::milliseconds(20);
  LockManager lm(&ts, opts);

  Invocation ins("insert", {Value("k")});
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId holder = ts.Call(t1, hot, ins);
  ASSERT_TRUE(lm.Acquire(hot, testing::LeafType(), ins, holder, t1).ok());
  // Three timed-out waits on the hot object, one on the cold one.
  ActionId t2 = ts.BeginTopLevel("T2");
  for (int i = 0; i < 3; ++i) {
    ActionId a = ts.Call(t2, hot, ins);
    EXPECT_TRUE(
        lm.Acquire(hot, testing::LeafType(), ins, a, t2).IsDeadlock());
  }
  ActionId cold_holder = ts.Call(t1, cold, ins);
  ASSERT_TRUE(
      lm.Acquire(cold, testing::LeafType(), ins, cold_holder, t1).ok());
  ActionId b = ts.Call(t2, cold, ins);
  EXPECT_TRUE(
      lm.Acquire(cold, testing::LeafType(), ins, b, t2).IsDeadlock());

  auto rows = lm.HottestObjects();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, hot);
  EXPECT_EQ(rows[0].second, 3u);
  EXPECT_EQ(rows[1].first, cold);
  EXPECT_EQ(rows[1].second, 1u);

  auto top1 = lm.HottestObjects(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].first, hot);
}

TEST(ContentionReportTest, EmptyWhenNoWaits) {
  TransactionSystem ts;
  LockManager lm(&ts);
  EXPECT_TRUE(lm.HottestObjects().empty());
}

}  // namespace
}  // namespace oodb
