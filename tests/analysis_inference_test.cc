// Commutativity-inference tests (lint pass 6 + oodb_infer engine):
//
//   * seeded defects — a fifo spec that lies about deq/deq, an
//     escrow-ish spec that lies about balance/deposit, and a mutating
//     "observer" must all be caught as errors;
//   * properties — fitted shapes never contradict their own probe
//     evidence (soundness), synthesized specs are symmetric (Def 9),
//     evidence is monotone under corpus growth, inference is
//     deterministic;
//   * regression pins for every hand-spec entry this inference work
//     tightened (fifo, directory, bptree scan/search, bucket info);
//   * verdict equivalence — Def 13/16 validation verdicts are identical
//     under the hand specs and the synthesized specs, on live runs and
//     on all Section 9 anomaly worlds.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/commutativity_inference.h"
#include "analysis/corpus.h"
#include "analysis/spec_synthesis.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"
#include "containers/bptree.h"
#include "containers/directory.h"
#include "containers/escrow.h"
#include "containers/fifo_queue.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"
#include "workload/anomalies.h"

namespace oodb {
namespace {

using analysis::BuildTypeCorpus;
using analysis::CompareWithHand;
using analysis::Diagnostic;
using analysis::EntryKind;
using analysis::InferenceOptions;
using analysis::InferredMatrix;
using analysis::InferType;
using analysis::MethodPairEntry;
using analysis::PairEvidence;
using analysis::Severity;
using analysis::SynthesizedSpec;
using analysis::TypeCorpus;

bool HasDiagnostic(const std::vector<Diagnostic>& diags, Severity severity,
                   const std::string& message_substring) {
  for (const Diagnostic& d : diags) {
    if (d.severity == severity &&
        d.message.find(message_substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void RegisterContainers(Database* db) {
  RegisterQueueMethods(db);
  RegisterDirectoryMethods(db);
  RegisterAccountMethods(db, EscrowAccountType());
  RegisterAccountMethods(db, NameOnlyAccountType());
  RegisterAccountMethods(db, RWAccountType());
  RegisterPageMethods(db);
  BpTree::RegisterMethods(db);
  HashIndex::RegisterMethods(db);
}

// --- seeded defects ---------------------------------------------------

/// A queue whose deq returns the head — order-observable — but whose
/// spec claims every enq/enq and deq/deq pair commutes.
struct SeededListState : public ObjectState {
  std::deque<std::string> items;
};

std::unique_ptr<MatrixCommutativity> LyingFifoSpec() {
  auto spec = std::make_unique<MatrixCommutativity>();
  spec->SetCommutes("deq", "deq");  // lie: deq returns the head
  spec->SetCommutes("enq", "enq");  // lie: order shows in the sequence
  return spec;
}

TypeProbeTraits SeededListProbe() {
  return {.states = {{"two",
                      [] {
                        auto s = std::make_unique<SeededListState>();
                        s->items = {"a", "b"};
                        return std::unique_ptr<ObjectState>(std::move(s));
                      }}},
          .fingerprint = [](const ObjectState& raw) {
            std::string out;
            for (const auto& item :
                 static_cast<const SeededListState&>(raw).items) {
              out += item + ",";
            }
            return out;
          }};
}

void RegisterSeededList(Database* db, const ObjectType* type) {
  db->Register(type, "enq",
               [](MethodContext& ctx, const ValueList& params,
                  Value* result) -> Status {
                 ctx.state<SeededListState>()->items.push_back(
                     params[0].AsString());
                 *result = Value();
                 return Status::OK();
               },
               {.calls = {},
                .samples = {{Value("x")}, {Value("y")}},
                .compensations = {},
                .undo_free = true});
  db->Register(type, "deq",
               [](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                 auto* s = ctx.state<SeededListState>();
                 if (s->items.empty()) return Status::NotFound("empty");
                 *result = Value(s->items.front());
                 s->items.pop_front();
                 return Status::OK();
               },
               {.calls = {},
                .samples = {{}},
                .compensations = {},
                .undo_free = true});
  db->DeclareProbe(type, SeededListProbe());
}

TEST(SeededDefects, LyingFifoSpecIsCaught) {
  ObjectType type("SeededFifo", LyingFifoSpec(), /*primitive=*/true);
  Database db;
  RegisterSeededList(&db, &type);

  const InferredMatrix matrix = InferType(&type, db.registry());
  ASSERT_TRUE(matrix.probed);
  EXPECT_GE(matrix.unsound_pairs(), 2u);  // deq/deq and enq/enq

  const MethodPairEntry* deq = matrix.Entry("deq", "deq");
  ASSERT_NE(deq, nullptr);
  EXPECT_GT(deq->unsound, 0u);
  EXPECT_EQ(deq->kind, EntryKind::kConflicts);
  const MethodPairEntry* enq = matrix.Entry("enq", "enq");
  ASSERT_NE(enq, nullptr);
  EXPECT_GT(enq->unsound, 0u);

  // Pass 6 escalates the refuted entries to errors, with a witness.
  const auto diags = CompareWithHand(matrix);
  EXPECT_TRUE(HasDiagnostic(diags, Severity::kError, "diverged"));

  // The synthesized spec refuses what probing refuted.
  SynthesizedSpec spec(matrix);
  EXPECT_FALSE(spec.Commutes(Invocation("deq"), Invocation("deq")));
}

/// An account whose balance observer is order-sensitive against
/// deposit, but whose spec claims they commute.
struct SeededAccountState : public ObjectState {
  int64_t balance = 0;
};

TEST(SeededDefects, LyingEscrowSpecIsCaught) {
  auto lying = std::make_unique<MatrixCommutativity>();
  lying->SetCommutes("deposit", "deposit");  // true
  lying->SetCommutes("balance", "deposit");  // lie: balance sees order
  ObjectType type("SeededEscrow", std::move(lying), /*primitive=*/true);
  Database db;
  db.Register(&type, "deposit",
              [](MethodContext& ctx, const ValueList& params,
                 Value* result) -> Status {
                ctx.state<SeededAccountState>()->balance +=
                    params[0].AsInt();
                *result = params[0];
                return Status::OK();
              },
              {.calls = {},
               .samples = {{Value(5)}, {Value(7)}},
               .compensations = {},
               .undo_free = true});
  db.Register(&type, "balance",
              [](MethodContext& ctx, const ValueList&,
                 Value* result) -> Status {
                *result =
                    Value(ctx.state<SeededAccountState>()->balance);
                return Status::OK();
              },
              {.observer = true,
               .calls = {},
               .samples = {{}},
               .compensations = {}});
  db.DeclareProbe(&type,
                  {.states = {{"hundred",
                               [] {
                                 auto s =
                                     std::make_unique<SeededAccountState>();
                                 s->balance = 100;
                                 return std::unique_ptr<ObjectState>(
                                     std::move(s));
                               }}},
                   .fingerprint = [](const ObjectState& raw) {
                     return std::to_string(
                         static_cast<const SeededAccountState&>(raw)
                             .balance);
                   }});

  const InferredMatrix matrix = InferType(&type, db.registry());
  ASSERT_TRUE(matrix.probed);
  const MethodPairEntry* entry = matrix.Entry("balance", "deposit");
  ASSERT_NE(entry, nullptr);
  EXPECT_GT(entry->unsound, 0u);
  EXPECT_EQ(entry->kind, EntryKind::kConflicts);
  // deposit/deposit really does commute; no false positive there.
  const MethodPairEntry* dd = matrix.Entry("deposit", "deposit");
  ASSERT_NE(dd, nullptr);
  EXPECT_EQ(dd->unsound, 0u);
  EXPECT_EQ(dd->kind, EntryKind::kCommutes);
  EXPECT_TRUE(HasDiagnostic(CompareWithHand(matrix), Severity::kError,
                            "diverged"));
}

TEST(SeededDefects, MutatingObserverIsCaught) {
  auto spec = std::make_unique<MatrixCommutativity>();
  spec->SetCommutes("peek", "peek");
  ObjectType type("SeededPeeker", std::move(spec), /*primitive=*/true);
  Database db;
  db.Register(&type, "peek",
              [](MethodContext& ctx, const ValueList&,
                 Value* result) -> Status {
                // Claims to observe, but bumps the balance.
                *result = Value(++ctx.state<SeededAccountState>()->balance);
                return Status::OK();
              },
              {.observer = true,
               .calls = {},
               .samples = {{}},
               .compensations = {}});
  db.DeclareProbe(&type,
                  {.states = {{"zero",
                               [] {
                                 return std::unique_ptr<ObjectState>(
                                     std::make_unique<SeededAccountState>());
                               }}},
                   .fingerprint = [](const ObjectState& raw) {
                     return std::to_string(
                         static_cast<const SeededAccountState&>(raw)
                             .balance);
                   }});

  const InferredMatrix matrix = InferType(&type, db.registry());
  ASSERT_FALSE(matrix.observer_violations.empty());
  EXPECT_EQ(matrix.observer_violations[0].method, "peek");
  EXPECT_TRUE(HasDiagnostic(CompareWithHand(matrix), Severity::kError,
                            "mutated probe state"));
}

// --- properties -------------------------------------------------------

TEST(InferenceProperties, ShippedSchemasAreSound) {
  // No shipped hand entry is refuted by probing, and no shipped
  // observer mutates a probe state.
  Database db;
  RegisterContainers(&db);
  for (const ObjectType* type : db.registry().Types()) {
    const InferredMatrix matrix = InferType(type, db.registry());
    EXPECT_EQ(matrix.unsound_pairs(), 0u) << matrix.type_name;
    EXPECT_TRUE(matrix.observer_violations.empty()) << matrix.type_name;
  }
}

TEST(InferenceProperties, FittedShapesNeverContradictEvidence) {
  // Internal soundness: wherever the fitted entry claims commutativity
  // for a probed combination, that combination's both-orders evidence
  // contains no divergence.
  Database db;
  RegisterContainers(&db);
  for (const ObjectType* type : db.registry().Types()) {
    const InferredMatrix matrix = InferType(type, db.registry());
    if (!matrix.probed) continue;
    for (const MethodPairEntry& entry : matrix.entries) {
      for (const PairEvidence& ev : entry.evidence) {
        if (entry.Commutes(ev.a, ev.b)) {
          EXPECT_EQ(ev.divergent, 0u)
              << matrix.type_name << "." << entry.method_a << "/"
              << entry.method_b << " on " << ev.a.ToString() << " + "
              << ev.b.ToString();
        }
      }
    }
  }
}

TEST(InferenceProperties, SynthesizedSpecsAreSymmetric) {
  // Def 9 commutativity is symmetric; the synthesized spec must be too,
  // across corpus params and their mutations.
  Database db;
  RegisterContainers(&db);
  for (const ObjectType* type : db.registry().Types()) {
    SynthesizedSpec spec(InferType(type, db.registry()));
    const TypeCorpus corpus = BuildTypeCorpus(type, db.registry());
    std::vector<Invocation> invocations;
    for (const auto& method : corpus.methods) {
      for (const ValueList& params : method.params) {
        invocations.emplace_back(method.method, params);
        invocations.emplace_back(method.method,
                                 analysis::MutateParams(params));
      }
    }
    for (const Invocation& x : invocations) {
      for (const Invocation& y : invocations) {
        EXPECT_EQ(spec.Commutes(x, y), spec.Commutes(y, x))
            << type->name() << ": " << x.ToString() << " vs "
            << y.ToString();
      }
    }
  }
}

TEST(InferenceProperties, EvidenceIsMonotoneUnderCorpusGrowth) {
  // Growing the probe corpus only adds combinations; the verdict of
  // every combination probed under the truncated corpus is unchanged
  // under the full corpus.
  Database db;
  RegisterContainers(&db);
  InferenceOptions truncated;
  truncated.max_params_per_method = 2;
  for (const ObjectType* type :
       {FifoQueueType(), DirectoryType(), PageObjectType()}) {
    const InferredMatrix small = InferType(type, db.registry(), truncated);
    const InferredMatrix full = InferType(type, db.registry());
    ASSERT_TRUE(small.probed);
    EXPECT_GE(full.pairs_probed, small.pairs_probed);
    for (const MethodPairEntry& entry : small.entries) {
      const MethodPairEntry* wide = full.Entry(entry.method_a,
                                               entry.method_b);
      ASSERT_NE(wide, nullptr);
      for (const PairEvidence& ev : entry.evidence) {
        bool found = false;
        for (const PairEvidence& wev : wide->evidence) {
          if ((wev.a == ev.a && wev.b == ev.b) ||
              (wev.a == ev.b && wev.b == ev.a)) {
            found = true;
            EXPECT_EQ(wev.equivalent, ev.equivalent);
            EXPECT_EQ(wev.divergent, ev.divergent);
            EXPECT_EQ(wev.vacuous, ev.vacuous);
            break;
          }
        }
        EXPECT_TRUE(found)
            << type->name() << ": combination " << ev.a.ToString() << " + "
            << ev.b.ToString() << " vanished under the larger corpus";
      }
    }
  }
}

TEST(InferenceProperties, InferenceIsDeterministic) {
  Database db;
  RegisterContainers(&db);
  for (const ObjectType* type : db.registry().Types()) {
    EXPECT_EQ(
        analysis::RenderInferredText(InferType(type, db.registry())),
        analysis::RenderInferredText(InferType(type, db.registry())));
  }
}

// --- regression pins for the tightened hand specs ---------------------

TEST(TightenedSpecs, FifoQueuePins) {
  const ObjectType* q = FifoQueueType();
  const Invocation enq_x("enq", {Value("x")});
  const Invocation enq_y("enq", {Value("y")});
  // Same-element enqueues commute (inference: same-param(0)); distinct
  // elements are order-visible in the sequence.
  EXPECT_TRUE(q->Commutes(enq_x, enq_x));
  EXPECT_FALSE(q->Commutes(enq_x, enq_y));
  // enq (tail) and pushFront (head) target different ends.
  EXPECT_TRUE(q->Commutes(enq_x, Invocation("pushFront", {Value("y")})));
  // cancel removes a named element: blind to order against enq of a
  // different element, conflicting for the same element.
  EXPECT_TRUE(q->Commutes(Invocation("cancel", {Value("x")}), enq_y));
  EXPECT_FALSE(q->Commutes(Invocation("cancel", {Value("x")}), enq_x));
  EXPECT_TRUE(q->Commutes(Invocation("cancel", {Value("x")}),
                          Invocation("cancel", {Value("x")})));
  // deq returns the head: never commutes with itself or enq.
  EXPECT_FALSE(q->Commutes(Invocation("deq"), Invocation("deq")));
  EXPECT_FALSE(q->Commutes(Invocation("deq"), enq_x));
  EXPECT_TRUE(q->Commutes(Invocation("size"), Invocation("size")));
}

TEST(TightenedSpecs, BTreeAndBucketObserverPins) {
  // scan/search (bptree) and info/info, info/search (hash bucket) were
  // added after the deep-observer rule proved them; pin them.
  const Invocation scan("scan", {Value("a"), Value("z")});
  const Invocation search("search", {Value("k")});
  for (const ObjectType* t :
       {BpTreeObjectType(), NodeObjectType(), LeafObjectType()}) {
    EXPECT_TRUE(t->Commutes(scan, search)) << t->name();
    EXPECT_TRUE(t->Commutes(search, scan)) << t->name();
  }
  const Invocation info("info", {});
  for (const ObjectType* t : {HashIndexObjectType(), BucketObjectType()}) {
    EXPECT_TRUE(t->Commutes(info, info)) << t->name();
    EXPECT_TRUE(t->Commutes(info, search)) << t->name();
    EXPECT_TRUE(t->Commutes(search, info)) << t->name();
  }
}

TEST(TightenedSpecs, ShippedProbedTypesMatchOrBeatHandSpecs) {
  // Acceptance: inference is at least as tight as the hand spec on
  // every entry (unsound == 0 everywhere, checked above) and strictly
  // tighter somewhere.
  Database db;
  RegisterContainers(&db);

  // The escrow account and the fifo queue hand specs are exactly tight:
  // nothing gained, nothing refuted.
  for (const ObjectType* type : {EscrowAccountType(), FifoQueueType()}) {
    const InferredMatrix matrix = InferType(type, db.registry());
    ASSERT_TRUE(matrix.probed) << type->name();
    EXPECT_EQ(matrix.gained_pairs(), 0u) << type->name();
    EXPECT_EQ(matrix.unsound_pairs(), 0u) << type->name();
  }

  // The escrow ablations deliberately lose concurrency; inference
  // quantifies it.
  const InferredMatrix name_only =
      InferType(NameOnlyAccountType(), db.registry());
  const MethodPairEntry* dw = name_only.Entry("deposit", "withdraw");
  ASSERT_NE(dw, nullptr);
  EXPECT_EQ(dw->kind, EntryKind::kCommutes);
  EXPECT_GT(dw->gained, 0u);

  // Directory: keyed entries infer exactly as declared, and the
  // evidence table proves updates of keys absent from every probe
  // state commute — strictly tighter than DifferentParam(0).
  const InferredMatrix dir = InferType(DirectoryType(), db.registry());
  const MethodPairEntry* ins = dir.Entry("insert", "insert");
  ASSERT_NE(ins, nullptr);
  EXPECT_EQ(ins->kind, EntryKind::kDifferentParam);
  EXPECT_EQ(ins->param_index, 0u);
  const MethodPairEntry* upd = dir.Entry("update", "update");
  ASSERT_NE(upd, nullptr);
  EXPECT_EQ(upd->kind, EntryKind::kEvidence);
  EXPECT_GT(upd->gained, 0u);

  // Page: the hand spec is the conventional reader/writer zero layer;
  // probing proves the keyed semantics (the paper's layered delta).
  const InferredMatrix page = InferType(PageObjectType(), db.registry());
  const MethodPairEntry* ww = page.Entry("write", "write");
  ASSERT_NE(ww, nullptr);
  EXPECT_EQ(ww->kind, EntryKind::kDifferentParamOrIdentical);
  EXPECT_GT(ww->gained, 0u);
  const MethodPairEntry* rw = page.Entry("read", "write");
  ASSERT_NE(rw, nullptr);
  EXPECT_EQ(rw->kind, EntryKind::kDifferentParam);
  EXPECT_GT(rw->gained, 0u);
  const MethodPairEntry* sw = page.Entry("scan", "write");
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->kind, EntryKind::kConflicts);
}

// --- verdict equivalence (Defs 13/16) ---------------------------------

/// Installs a synthesized spec for every registered type; the returned
/// specs must outlive the system.
std::vector<std::unique_ptr<SynthesizedSpec>> InstallInferred(
    Database* db) {
  std::vector<std::unique_ptr<SynthesizedSpec>> specs;
  for (const ObjectType* type : db->registry().Types()) {
    specs.push_back(std::make_unique<SynthesizedSpec>(
        InferType(type, db->registry())));
    db->ts().SetSpecOverride(type, specs.back().get());
  }
  return specs;
}

TEST(VerdictEquivalence, LiveDocumentRunValidatesIdentically) {
  DatabaseOptions opts;
  Database db(opts);
  Document::RegisterMethods(&db);
  ObjectId doc = Document::Create(&db, "Paper", /*sections=*/3);
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < 3; ++s) {
      ASSERT_TRUE(db.RunTransaction("edit", [&](MethodContext& txn) {
                      return txn.Call(
                          doc, Document::EditSection(
                                   s, "r" + std::to_string(round)));
                    }).ok());
    }
    Value out;
    ASSERT_TRUE(db.RunTransaction("read", [&](MethodContext& txn) {
                    return txn.Call(doc, Document::ReadAll(), &out);
                  }).ok());
  }

  ValidationReport hand = Validator::Validate(&db.ts());
  const auto specs = InstallInferred(&db);
  ValidationOptions already_extended;
  already_extended.apply_extension = false;
  ValidationReport inferred =
      Validator::Validate(&db.ts(), already_extended);

  EXPECT_TRUE(hand.oo_serializable) << hand.Summary();
  EXPECT_EQ(hand.oo_serializable, inferred.oo_serializable);
  EXPECT_EQ(hand.conform, inferred.conform);
}

TEST(VerdictEquivalence, AnomalyWorldsValidateIdentically) {
  // The Section 9 worlds use the keyed Leaf/Page types; Page is probed,
  // the rest delegate. Every bad variant must stay rejected and every
  // good variant accepted under the synthesized specs.
  Database registry_db;
  Encyclopedia::RegisterMethods(&registry_db);
  std::vector<std::unique_ptr<SynthesizedSpec>> specs;
  std::vector<const ObjectType*> types;
  for (const ObjectType* type : registry_db.registry().Types()) {
    specs.push_back(std::make_unique<SynthesizedSpec>(
        InferType(type, registry_db.registry())));
    types.push_back(type);
  }

  for (AnomalyKind kind : AllAnomalyKinds()) {
    for (bool bad : {false, true}) {
      std::unique_ptr<TransactionSystem> ts = MakeAnomaly(kind, bad);
      ValidationReport hand = Validator::Validate(ts.get());
      for (size_t i = 0; i < types.size(); ++i) {
        ts->SetSpecOverride(types[i], specs[i].get());
      }
      ValidationOptions already_extended;
      already_extended.apply_extension = false;
      ValidationReport inferred =
          Validator::Validate(ts.get(), already_extended);
      EXPECT_EQ(hand.oo_serializable, !bad)
          << AnomalyKindName(kind) << " bad=" << bad;
      EXPECT_EQ(hand.oo_serializable, inferred.oo_serializable)
          << AnomalyKindName(kind) << " bad=" << bad;
    }
  }
}

// --- analyzer integration (pass 6 wiring) -----------------------------

TEST(AnalyzerIntegration, Pass6RunsAndStaysCleanOnShippedSchemas) {
  Database db;
  Document::RegisterMethods(&db);
  const analysis::AnalysisReport report =
      analysis::AnalyzeSchema("document", db);
  EXPECT_GT(report.inference.types, 0u);
  EXPECT_GT(report.inference.pairs_probed, 0u);   // Page probes
  EXPECT_GT(report.inference.entries_tightened, 0u);
  EXPECT_EQ(report.inference.entries_unsound, 0u);
  EXPECT_EQ(report.errors(), 0u);
  // Lost-concurrency findings surface as notes, never as gating
  // diagnostics.
  bool found_note = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.pass != "inference") continue;
    EXPECT_EQ(d.severity, Severity::kNote) << d.ToString();
    found_note = true;
  }
  EXPECT_TRUE(found_note);
}

TEST(AnalyzerIntegration, InferenceCanBeDisabled) {
  Database db;
  Document::RegisterMethods(&db);
  analysis::AnalyzerOptions options;
  options.inference = false;
  const analysis::AnalysisReport report =
      analysis::AnalyzeSchema("document", db, options);
  EXPECT_EQ(report.inference.types, 0u);
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.pass, "inference") << d.ToString();
  }
}

}  // namespace
}  // namespace oodb
