// Equivalence of the indexed (memoized, worklist-driven, parallel)
// dependency engine with the serial reference engine, property-tested
// over random histories:
//
//   P1  For random histories the indexed engine at 2 and 8 threads
//       produces identical DependencyStats, identical per-object edge
//       sets (action, transaction, and added dependencies), and
//       identical conflict pairs.
//   P2  The same holds on non-atomic interleavings, where most
//       histories are *rejected* (Def 13 ii) — verdict equivalence on
//       the rejecting side.
//   P3  Full Validator runs agree on verdicts and statistics across
//       num_threads ∈ {1, 2, 8}.
//   P4  Memoized conflict decisions equal direct Commute results pair
//       by pair.
//   P5  A state-dependent escrow-style spec (CommutativityMemo::kNone)
//       bypasses the memo: the indexed engine tracks the spec's current
//       state exactly as the reference engine does, and every query
//       reaches the spec.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "model/extension.h"
#include "schedule/conflict_index.h"
#include "schedule/validator.h"
#include "workload/random_history.h"

namespace oodb {
namespace {

using EdgeList = std::vector<std::pair<uint64_t, uint64_t>>;

EdgeList SortedEdges(const Digraph& g) {
  EdgeList edges;
  edges.reserve(g.EdgeCount());
  for (Digraph::NodeId n : g.Nodes()) {
    for (Digraph::NodeId s : g.Successors(n)) edges.emplace_back(n, s);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

void ExpectStatsEqual(const DependencyStats& a, const DependencyStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.primitive_conflicts, b.primitive_conflicts) << what;
  EXPECT_EQ(a.inherited_txn_deps, b.inherited_txn_deps) << what;
  EXPECT_EQ(a.stopped_inheritance, b.stopped_inheritance) << what;
  EXPECT_EQ(a.added_deps, b.added_deps) << what;
  EXPECT_EQ(a.fixpoint_rounds, b.fixpoint_rounds) << what;
  EXPECT_EQ(a.unordered_conflicts, b.unordered_conflicts) << what;
}

void ExpectEnginesEqual(const TransactionSystem& ts, size_t threads,
                        const std::string& what) {
  DependencyEngine reference(ts);
  ASSERT_TRUE(reference.Compute().ok()) << what;

  DependencyOptions options;
  options.mode = DependencyOptions::Mode::kIndexed;
  options.num_threads = threads;
  DependencyEngine indexed(ts, options);
  ASSERT_TRUE(indexed.Compute().ok()) << what;

  ExpectStatsEqual(reference.stats(), indexed.stats(), what);
  ASSERT_EQ(reference.schedules().size(), indexed.schedules().size());
  for (size_t i = 0; i < reference.schedules().size(); ++i) {
    const ObjectSchedule& r = reference.schedules()[i];
    const ObjectSchedule& x = indexed.schedules()[i];
    std::string where = what + " object " + std::to_string(i);
    EXPECT_EQ(r.conflict_pairs, x.conflict_pairs) << where;
    EXPECT_EQ(SortedEdges(r.action_deps), SortedEdges(x.action_deps))
        << where;
    EXPECT_EQ(SortedEdges(r.txn_deps), SortedEdges(x.txn_deps)) << where;
    EXPECT_EQ(SortedEdges(r.added_deps), SortedEdges(x.added_deps)) << where;
    EXPECT_EQ(r.IsOoSerializable(), x.IsOoSerializable()) << where;
    EXPECT_EQ(r.AddedAcyclic(), x.AddedAcyclic()) << where;
  }
}

class ParallelEngineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEngineProperty, IndexedEngineMatchesReference) {
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 6;
  config.ops_per_txn = 4;
  config.num_leaves = 2;
  config.keys_per_leaf = 6;
  RandomHistory h = GenerateRandomHistory(config);
  SystemExtender::Extend(h.ts.get());
  for (size_t threads : {2, 8}) {
    ExpectEnginesEqual(*h.ts, threads,
                       "seed " + std::to_string(GetParam()) + " threads " +
                           std::to_string(threads));
  }
}

TEST_P(ParallelEngineProperty, IndexedEngineMatchesReferenceOnRejections) {
  // Free interleaving of primitives: almost every history contains a
  // Def 13(ii) contradiction, so equivalence is exercised on cyclic
  // relations too.
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 4;
  config.ops_per_txn = 3;
  config.atomic_ops = false;
  RandomHistory h = GenerateRandomHistory(config);
  SystemExtender::Extend(h.ts.get());
  ExpectEnginesEqual(*h.ts, 2, "seed " + std::to_string(GetParam()));
}

TEST_P(ParallelEngineProperty, ValidatorAgreesAcrossThreadCounts) {
  auto make = [&] {
    RandomHistoryConfig config;
    config.seed = GetParam();
    config.num_txns = 5;
    config.ops_per_txn = 4;
    config.num_leaves = 2;
    config.keys_per_leaf = 8;
    return GenerateRandomHistory(config);
  };
  RandomHistory serial = make();
  ValidationOptions serial_options;
  serial_options.check_global = true;
  ValidationReport want = Validator::Validate(serial.ts.get(),
                                              serial_options);
  for (size_t threads : {size_t{2}, size_t{8}}) {
    RandomHistory h = make();
    ValidationOptions options;
    options.check_global = true;
    options.num_threads = threads;
    ValidationReport got = Validator::Validate(h.ts.get(), options);
    std::string what = "seed " + std::to_string(GetParam()) + " threads " +
                       std::to_string(threads);
    EXPECT_EQ(want.oo_serializable, got.oo_serializable) << what;
    EXPECT_EQ(want.conventionally_serializable,
              got.conventionally_serializable)
        << what;
    EXPECT_EQ(want.conform, got.conform) << what;
    EXPECT_EQ(want.globally_acyclic, got.globally_acyclic) << what;
    EXPECT_EQ(want.conventional.conflicting_pairs,
              got.conventional.conflicting_pairs)
        << what;
    EXPECT_EQ(SortedEdges(want.conventional.conflict_graph),
              SortedEdges(got.conventional.conflict_graph))
        << what;
    ExpectStatsEqual(want.stats, got.stats, what);
  }
}

TEST_P(ParallelEngineProperty, MemoizedConflictsEqualDirectCommute) {
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 4;
  config.ops_per_txn = 4;
  RandomHistory h = GenerateRandomHistory(config);
  SystemExtender::Extend(h.ts.get());
  const TransactionSystem& ts = *h.ts;

  ConflictIndex index(ts);
  for (size_t i = 0; i < ts.object_count(); ++i) {
    index.BuildForObject(ObjectId(i));
  }
  size_t queries = 0;
  for (size_t i = 0; i < ts.object_count(); ++i) {
    const auto& acts = ts.ActionsOn(ObjectId(i));
    for (size_t a = 0; a < acts.size(); ++a) {
      for (size_t b = a + 1; b < acts.size(); ++b) {
        ++queries;
        EXPECT_EQ(ts.Commute(acts[a], acts[b]),
                  index.Commute(acts[a], acts[b]))
            << ts.Describe(acts[a]) << " vs " << ts.Describe(acts[b]);
      }
    }
  }
  // The history's types (pages, leaves, tree, S) all declare memoizable
  // specs: spec work is bounded by the class matrix, never by the
  // quadratic pair volume, and repeated queries are served from the
  // memo. (The absorption *ratio* only becomes dramatic at bench scale;
  // tiny histories have mostly-distinct invocation classes.)
  EXPECT_LE(index.spec_calls(), queries)
      << "memo did more spec work than the naive sweep";
  EXPECT_GT(index.memo_hits(), 0u) << "memo never answered a query";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEngineProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// --- state-dependent escrow spec -------------------------------------

/// Escrow-style commutativity: two withdrawals commute only while their
/// combined amount fits in the account's current headroom — a decision
/// that "includes ... the status of accessed objects", so it must not
/// be cached. Inherits the base-class default CommutativityMemo::kNone:
/// safety is the default for custom specs.
class HeadroomSpec : public CommutativitySpec {
 public:
  bool Commutes(const Invocation& a, const Invocation& b) const override {
    ++calls_;
    if (a.method == "withdraw" && b.method == "withdraw") {
      return a.params[0].AsInt() + b.params[0].AsInt() <= headroom_;
    }
    return true;  // deposits commute with everything
  }

  void set_headroom(int64_t h) { headroom_ = h; }
  size_t calls() const { return calls_.load(); }

 private:
  int64_t headroom_ = 100;
  // Atomic: the indexed engine consults kNone specs from pool threads.
  mutable std::atomic<size_t> calls_{0};
};

TEST(StateDependentSpec, DefaultsToNoMemo) {
  EXPECT_EQ(HeadroomSpec().memo(), CommutativityMemo::kNone);
  EXPECT_EQ(MatrixCommutativity().memo(), CommutativityMemo::kMethodPair);
  EXPECT_EQ(PredicateCommutativity().memo(),
            CommutativityMemo::kInvocationPair);
  PredicateCommutativity stateful;
  stateful.DeclareStateDependent();
  EXPECT_EQ(stateful.memo(), CommutativityMemo::kNone);
}

TEST(StateDependentSpec, IndexedEngineBypassesMemo) {
  auto owned = std::make_unique<HeadroomSpec>();
  HeadroomSpec* spec = owned.get();
  ObjectType account("Account", std::move(owned), /*primitive=*/true);

  auto build = [&] {
    auto ts = std::make_unique<TransactionSystem>();
    ObjectId acct = ts->AddObject(&account, "A");
    for (int t = 0; t < 2; ++t) {
      ActionId top = ts->BeginTopLevel("T" + std::to_string(t + 1));
      ActionId w = ts->Call(top, acct, Invocation("withdraw", {Value(60)}));
      ts->SetTimestamp(w, ts->NextTimestamp());
    }
    return ts;
  };

  // Tight headroom: 60 + 60 > 100, the withdrawals conflict.
  spec->set_headroom(100);
  {
    auto ts = build();
    ExpectEnginesEqual(*ts, 2, "tight headroom");
    DependencyOptions options;
    options.mode = DependencyOptions::Mode::kIndexed;
    DependencyEngine engine(*ts, options);
    ASSERT_TRUE(engine.Compute().ok());
    EXPECT_EQ(engine.stats().primitive_conflicts, 1u);
  }

  // The account state changed: the same history now commutes. A memo
  // keyed on the invocations would still report the stale conflict;
  // the kNone declaration forces every query through the spec.
  spec->set_headroom(200);
  {
    auto ts = build();
    size_t calls_before = spec->calls();
    ExpectEnginesEqual(*ts, 2, "relaxed headroom");
    DependencyOptions options;
    options.mode = DependencyOptions::Mode::kIndexed;
    DependencyEngine engine(*ts, options);
    ASSERT_TRUE(engine.Compute().ok());
    EXPECT_EQ(engine.stats().primitive_conflicts, 0u);
    EXPECT_GT(spec->calls(), calls_before)
        << "indexed engine never consulted the state-dependent spec";
  }
}

}  // namespace
}  // namespace oodb
