// MethodContext behaviours: state access, object creation inside
// transactions, and compensation ordering on abort.

#include <gtest/gtest.h>

#include "containers/directory.h"
#include "containers/fifo_queue.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

TEST(MethodContextTest, CompensationsRunInReverseCompletionOrder) {
  // Start with k=0; the transaction runs update(k,1) then update(k,2)
  // and aborts. Correct reverse-order compensation restores 0; forward
  // order would leave 1.
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("seed", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("insert", {Value("k"), Value("0")}));
                }).ok());
  (void)db.RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("update", {Value("k"), Value("1")})));
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("update", {Value("k"), Value("2")})));
    return Status::Aborted("rollback");
  });
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.at("k"), "0");
}

TEST(MethodContextTest, DeepCompensationChain) {
  // Five updates; abort unwinds all of them in order.
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("seed", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("insert", {Value("k"), Value("v0")}));
                }).ok());
  (void)db.RunTransaction("abort", [&](MethodContext& txn) {
    for (int i = 1; i <= 5; ++i) {
      OODB_RETURN_IF_ERROR(txn.Call(
          dir, Invocation("update",
                          {Value("k"), Value("v" + std::to_string(i))})));
    }
    return Status::Aborted("rollback");
  });
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.at("k"), "v0");
}

TEST(MethodContextTest, MixedQueueCompensation) {
  // deq then enq, aborted: the queue returns to its exact original
  // shape (pushFront after cancel).
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  ASSERT_TRUE(db.RunTransaction("seed", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(q, Invocation("enq", {Value("a")})));
                  return txn.Call(q, Invocation("enq", {Value("b")}));
                }).ok());
  (void)db.RunTransaction("abort", [&](MethodContext& txn) {
    Value front;
    OODB_RETURN_IF_ERROR(txn.Call(q, Invocation("deq"), &front));
    OODB_RETURN_IF_ERROR(txn.Call(q, Invocation("enq", {Value("c")})));
    return Status::Aborted("rollback");
  });
  auto* state = db.StateOf<QueueState>(q);
  ASSERT_EQ(state->items.size(), 2u);
  EXPECT_EQ(state->items[0], "a");
  EXPECT_EQ(state->items[1], "b");
}

// A composite type whose method creates objects mid-transaction.
struct SpawnerState : public ObjectState {
  std::vector<ObjectId> spawned;
};

const ObjectType* SpawnerType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("spawn", "spawn");
    return new ObjectType("Spawner", std::move(spec));
  }();
  return type;
}

TEST(MethodContextTest, CreateObjectMidTransaction) {
  Database db;
  RegisterPageMethods(&db);
  db.Register(SpawnerType(), "spawn",
              [](MethodContext& ctx, const ValueList& params,
                 Value* result) -> Status {
                ObjectId page = CreatePage(
                    ctx.db(), "Spawned" + params[0].ToString(), 8);
                OODB_RETURN_IF_ERROR(ctx.Call(
                    page, Invocation("write", {Value("seed"), params[0]})));
                ctx.WithState<SpawnerState>([&](SpawnerState* s) {
                  s->spawned.push_back(page);
                  return 0;
                });
                *result = Value(int64_t(page.value));
                return Status::OK();
              });
  ObjectId spawner = db.CreateObject(SpawnerType(), "S",
                                     std::make_unique<SpawnerState>());
  Value page_id;
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(spawner, Invocation("spawn", {Value(7)}),
                                  &page_id);
                }).ok());
  ObjectId page(uint64_t(page_id.AsInt()));
  EXPECT_TRUE(db.StateOf<PageState>(page)->Contains("seed"));
  // The created object and its initializing write are in the history.
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable);
}

TEST(MethodContextTest, SelfAndActionAccessors) {
  Database db;
  RegisterPageMethods(&db);
  ObjectId page = CreatePage(&db, "P", 4);
  ObjectId observed_self;
  ActionId observed_action;
  db.Register(PageObjectType(), "introspect",
              [&](MethodContext& ctx, const ValueList&,
                  Value* result) -> Status {
                observed_self = ctx.self();
                observed_action = ctx.action();
                *result = Value();
                return Status::OK();
              });
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  EXPECT_FALSE(txn.self().valid());  // txn body: no object
                  return txn.Call(page, Invocation("introspect"));
                }).ok());
  EXPECT_EQ(observed_self, page);
  EXPECT_TRUE(observed_action.valid());
  EXPECT_EQ(db.ts().action(observed_action).object, page);
}

TEST(MethodContextTest, PrimitiveMethodsMustNotCall) {
  // Def 3: primitive actions call no other action; the runtime enforces
  // it.
  Database db;
  RegisterPageMethods(&db);
  ObjectId page = CreatePage(&db, "P", 4);
  ObjectId other = CreatePage(&db, "Q", 4);
  db.Register(PageObjectType(), "rogue",
              [other](MethodContext& ctx, const ValueList&,
                      Value* result) -> Status {
                *result = Value();
                return ctx.Call(other,
                                Invocation("write", {Value("k"), Value("v")}));
              });
  Status st = db.RunTransaction("T", [&](MethodContext& txn) {
    return txn.Call(page, Invocation("rogue"));
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("Def 3"), std::string::npos);
  EXPECT_FALSE(db.StateOf<PageState>(other)->Contains("k"));
  EXPECT_EQ(db.locks().LockCount(), 0u);
}

TEST(MethodContextTest, RegistryReplacementTakesEffect) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  // Replace lookup with a constant.
  db.Register(DirectoryType(), "lookup",
              [](MethodContext&, const ValueList&, Value* result) -> Status {
                *result = Value("overridden");
                return Status::OK();
              });
  Value out;
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(dir, Invocation("lookup", {Value("x")}),
                                  &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "overridden");
}

}  // namespace
}  // namespace oodb
