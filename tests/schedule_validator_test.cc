#include "schedule/validator.h"

#include <gtest/gtest.h>

#include "paper_types.h"

namespace oodb {
namespace {

using testing::BpTreeType;
using testing::LeafType;
using testing::PageType;

Invocation Ins(const std::string& k) {
  return Invocation("insert", {Value(k)});
}

void Stamp(TransactionSystem* ts, ActionId a) {
  ts->SetTimestamp(a, ts->NextTimestamp());
}

// One "insert through leaf to page" call path.
struct Path {
  ActionId top, tree, leaf, read, write;
};

Path MakeInsert(TransactionSystem* ts, ObjectId tree, ObjectId leaf,
                ObjectId page, const std::string& key,
                const std::string& txn) {
  Path p;
  p.top = ts->BeginTopLevel(txn);
  p.tree = ts->Call(p.top, tree, Ins(key));
  p.leaf = ts->Call(p.tree, leaf, Ins(key));
  p.read = ts->Call(p.leaf, page, Invocation("read"));
  p.write = ts->Call(p.leaf, page, Invocation("write"));
  return p;
}

TEST(ValidatorTest, EmptySystemIsSerializable) {
  TransactionSystem ts;
  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_TRUE(report.conventionally_serializable);
  EXPECT_TRUE(report.conform);
}

TEST(ValidatorTest, SerialScheduleAlwaysSerializable) {
  TransactionSystem ts;
  ObjectId tree = ts.AddObject(BpTreeType(), "BpTree");
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  Path p1 = MakeInsert(&ts, tree, leaf, page, "k", "T1");
  Stamp(&ts, p1.read);
  Stamp(&ts, p1.write);
  Path p2 = MakeInsert(&ts, tree, leaf, page, "k", "T2");
  Stamp(&ts, p2.read);
  Stamp(&ts, p2.write);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_TRUE(report.conventionally_serializable);
  ASSERT_EQ(report.serialization_order.size(), 2u);
  EXPECT_EQ(report.serialization_order[0], p1.top);
  EXPECT_EQ(report.serialization_order[1], p2.top);
}

TEST(ValidatorTest, OoAcceptsWhatConventionalRejects) {
  // The headline divergence: two transactions insert *different* keys
  // through two distinct leaves, each touching two shared pages in
  // opposite orders. Page-level R/W conflict analysis sees a cycle
  // (conventional: not serializable); at leaf level the inserts commute,
  // so oo-serializability accepts.
  TransactionSystem ts;
  ObjectId tree = ts.AddObject(BpTreeType(), "BpTree");
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId pageA = ts.AddObject(PageType(), "PageA");
  ObjectId pageB = ts.AddObject(PageType(), "PageB");

  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId tr1 = ts.Call(t1, tree, Ins("DBS"));
  ActionId tr2 = ts.Call(t2, tree, Ins("DBMS"));
  ActionId lf1 = ts.Call(tr1, leaf, Ins("DBS"));
  ActionId lf2 = ts.Call(tr2, leaf, Ins("DBMS"));
  // T1 writes pageA then T2 writes pageA; T2 writes pageB then T1
  // writes pageB. Each leaf insert is atomic in itself (locks held while
  // running would prevent this interleave for a single leaf op, so use
  // two separate leaf ops per transaction).
  ActionId lf1b = ts.Call(tr1, leaf, Ins("DBS2"));
  ActionId lf2b = ts.Call(tr2, leaf, Ins("DBMS2"));
  ActionId wa1 = ts.Call(lf1, pageA, Invocation("write"));
  ActionId wa2 = ts.Call(lf2, pageA, Invocation("write"));
  ActionId wb2 = ts.Call(lf2b, pageB, Invocation("write"));
  ActionId wb1 = ts.Call(lf1b, pageB, Invocation("write"));
  Stamp(&ts, wa1);
  Stamp(&ts, wa2);
  Stamp(&ts, wb2);
  Stamp(&ts, wb1);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_FALSE(report.conventionally_serializable);
  EXPECT_GE(report.stats.stopped_inheritance, 2u);
}

TEST(ValidatorTest, RejectsTopLevelCycle) {
  // T1 and T2 both insert the same two keys, in opposite orders: the
  // conflicts inherit to the top and form a cycle.
  TransactionSystem ts;
  ObjectId tree = ts.AddObject(BpTreeType(), "BpTree");
  ObjectId leafX = ts.AddObject(LeafType(), "LeafX");
  ObjectId leafY = ts.AddObject(LeafType(), "LeafY");
  ObjectId pageX = ts.AddObject(PageType(), "PageX");
  ObjectId pageY = ts.AddObject(PageType(), "PageY");

  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  auto leg = [&](ActionId top, ObjectId lf, ObjectId pg,
                 const std::string& key) {
    ActionId tr = ts.Call(top, tree, Ins(key));
    ActionId l = ts.Call(tr, lf, Ins(key));
    ActionId w = ts.Call(l, pg, Invocation("write"));
    return w;
  };
  ActionId w1x = leg(t1, leafX, pageX, "x");
  ActionId w2x = leg(t2, leafX, pageX, "x");
  ActionId w2y = leg(t2, leafY, pageY, "y");
  ActionId w1y = leg(t1, leafY, pageY, "y");
  Stamp(&ts, w1x);  // T1 before T2 on x
  Stamp(&ts, w2x);
  Stamp(&ts, w2y);  // T2 before T1 on y
  Stamp(&ts, w1y);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_FALSE(report.oo_serializable);
  EXPECT_FALSE(report.conventionally_serializable);
  EXPECT_FALSE(report.diagnostics.empty());
  EXPECT_TRUE(report.serialization_order.empty());
}

TEST(ValidatorTest, ConformanceViolationDetected) {
  // T1's method body demands read-before-write, but the recorded
  // execution stamped them the other way around (Def 7 violation).
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId lf = ts.Call(t1, leaf, Ins("k"));
  ActionId rd = ts.Call(lf, page, Invocation("read"));
  ActionId wr = ts.Call(lf, page, Invocation("write"));
  Stamp(&ts, wr);  // executed first, violating rd < wr precedence
  Stamp(&ts, rd);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_FALSE(report.conform);
  ASSERT_FALSE(report.diagnostics.empty());
  EXPECT_NE(report.diagnostics[0].find("conformance"), std::string::npos);
}

TEST(ValidatorTest, ConformanceCanBeSkipped) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId lf = ts.Call(t1, leaf, Ins("k"));
  ActionId rd = ts.Call(lf, page, Invocation("read"));
  ActionId wr = ts.Call(lf, page, Invocation("write"));
  Stamp(&ts, wr);
  Stamp(&ts, rd);

  ValidationOptions opts;
  opts.check_conformance = false;
  ValidationReport report = Validator::Validate(&ts, opts);
  EXPECT_TRUE(report.conform);
}

TEST(ValidatorTest, ExtensionAppliedAutomatically) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(LeafType(), "Node6");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node, Ins("k"));
  ts.Call(ins, node, Invocation("rearrange"));

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_EQ(report.extension.cycles_broken, 1u);
}

TEST(ValidatorTest, UnextendedSystemFailsWhenExtensionDisabled) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(LeafType(), "Node6");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, node, Ins("k"));
  ts.Call(ins, node, Invocation("rearrange"));

  ValidationOptions opts;
  opts.apply_extension = false;
  ValidationReport report = Validator::Validate(&ts, opts);
  EXPECT_FALSE(report.oo_serializable);
  ASSERT_FALSE(report.diagnostics.empty());
}

TEST(ValidatorTest, AddedDependencyTwoCycleRejectedByDef16) {
  // The Def 15/16 mechanism earning its keep: two transactions whose
  // conflicting callers live on *different* objects (LeafA vs LeafB),
  // with page-level orders pointing in opposite directions. No single
  // object's own action/transaction dependencies are cyclic, but the
  // added action dependency relation recorded at each caller's object
  // closes the cycle.
  TransactionSystem ts;
  ObjectId leafA = ts.AddObject(LeafType(), "LeafA");
  ObjectId leafB = ts.AddObject(LeafType(), "LeafB");
  ObjectId page1 = ts.AddObject(PageType(), "P1");
  ObjectId page2 = ts.AddObject(PageType(), "P2");

  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a = ts.Call(t1, leafA, Ins("x"));
  ActionId b = ts.Call(t2, leafB, Ins("y"));
  // a -> b on page1; b -> a on page2.
  ActionId w1a = ts.Call(a, page1, Invocation("write"));
  ActionId w1b = ts.Call(b, page1, Invocation("write"));
  ActionId w2b = ts.Call(b, page2, Invocation("write"));
  ActionId w2a = ts.Call(a, page2, Invocation("write"));
  Stamp(&ts, w1a);
  Stamp(&ts, w1b);
  Stamp(&ts, w2b);
  Stamp(&ts, w2a);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_FALSE(report.oo_serializable);
  bool saw_def16 = false;
  for (const std::string& d : report.diagnostics) {
    if (d.find("Def 16") != std::string::npos) saw_def16 = true;
  }
  EXPECT_TRUE(saw_def16) << report.Summary();
  EXPECT_FALSE(report.conventionally_serializable);
}

TEST(ValidatorTest, UnorderedConflictsCounted) {
  // Two conflicting composite actions whose subtrees never meet: the
  // analysis cannot order them and reports the pair as unordered.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId pageA = ts.AddObject(PageType(), "PA");
  ObjectId pageB = ts.AddObject(PageType(), "PB");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  // Same key -> the leaf ops conflict, but they touch disjoint pages.
  ActionId a = ts.Call(t1, leaf, Ins("k"));
  ActionId b = ts.Call(t2, leaf, Ins("k"));
  ActionId wa = ts.Call(a, pageA, Invocation("write"));
  ActionId wb = ts.Call(b, pageB, Invocation("write"));
  Stamp(&ts, wa);
  Stamp(&ts, wb);

  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_GE(report.stats.unordered_conflicts, 1u);
  EXPECT_NE(report.Summary().find("unordered="), std::string::npos);
}

TEST(ValidatorTest, GlobalCheckCatchesThreeObjectCycle) {
  // A dependency cycle threading through three objects: each object's
  // local relations stay acyclic (Def 16 passes), but the global union
  // has a cycle. This documents that the paper's distributed condition
  // is weaker than global acyclicity.
  TransactionSystem ts;
  ObjectId la = ts.AddObject(LeafType(), "LA");
  ObjectId lb = ts.AddObject(LeafType(), "LB");
  ObjectId lc = ts.AddObject(LeafType(), "LC");
  ObjectId pab = ts.AddObject(PageType(), "Pab");
  ObjectId pbc = ts.AddObject(PageType(), "Pbc");
  ObjectId pca = ts.AddObject(PageType(), "Pca");

  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId t3 = ts.BeginTopLevel("T3");
  ActionId a = ts.Call(t1, la, Ins("a"));
  ActionId b = ts.Call(t2, lb, Ins("b"));
  ActionId c = ts.Call(t3, lc, Ins("c"));
  // a -> b on Pab, b -> c on Pbc, c -> a on Pca.
  ActionId w1 = ts.Call(a, pab, Invocation("write"));
  ActionId w2 = ts.Call(b, pab, Invocation("write"));
  ActionId w3 = ts.Call(b, pbc, Invocation("write"));
  ActionId w4 = ts.Call(c, pbc, Invocation("write"));
  ActionId w5 = ts.Call(c, pca, Invocation("write"));
  ActionId w6 = ts.Call(a, pca, Invocation("write"));
  Stamp(&ts, w1);
  Stamp(&ts, w2);
  Stamp(&ts, w3);
  Stamp(&ts, w4);
  Stamp(&ts, w5);
  Stamp(&ts, w6);

  ValidationOptions opts;
  opts.check_global = true;
  ValidationReport report = Validator::Validate(&ts, opts);
  // Paper-faithful per-object condition passes...
  EXPECT_TRUE(report.oo_serializable);
  // ...but conventional analysis and the global check both see the
  // cycle T1 -> T2 -> T3 -> T1.
  EXPECT_FALSE(report.conventionally_serializable);
  EXPECT_FALSE(report.globally_acyclic);
}

TEST(ValidatorTest, SummaryMentionsVerdicts) {
  TransactionSystem ts;
  ValidationReport report = Validator::Validate(&ts);
  std::string s = report.Summary();
  EXPECT_NE(s.find("oo-serializable=yes"), std::string::npos);
  EXPECT_NE(s.find("conventional=yes"), std::string::npos);
}

}  // namespace
}  // namespace oodb
