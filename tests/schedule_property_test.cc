// Property-based sweeps over random histories and random concurrent
// executions, checking the paper's structural claims:
//
//   P1  Serial histories are always oo-serializable (and conventional).
//   P2  Inclusion: every conventionally serializable single-process
//       history is oo-serializable — oo-serializability only *adds*
//       admissible schedules.
//   P3  The inclusion is strict: across random interleavings, oo accepts
//       strictly more histories than the conventional criterion.
//   P4  Histories produced by the open nested scheduler always validate.
//   P5  Histories produced by flat 2PL are conventionally serializable.

#include <gtest/gtest.h>

#include <thread>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"
#include "util/random.h"
#include "workload/random_history.h"

namespace oodb {
namespace {

class RandomHistoryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomHistoryProperty, SerialHistoriesAlwaysSerializable) {
  // Serial = one transaction at a time: generate with num_txns executed
  // back to back by using a single interleaving slot each.
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 1;  // each "history" is trivially serial
  config.ops_per_txn = 6;
  RandomHistory h = GenerateRandomHistory(config);
  ValidationReport report = Validator::Validate(h.ts.get());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conventionally_serializable);
}

TEST_P(RandomHistoryProperty, ConventionalImpliesOo) {
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 4;
  config.ops_per_txn = 3;
  config.num_leaves = 2;
  config.keys_per_leaf = 6;
  RandomHistory h = GenerateRandomHistory(config);
  ValidationReport report = Validator::Validate(h.ts.get());
  if (report.conventionally_serializable) {
    EXPECT_TRUE(report.oo_serializable)
        << "seed " << GetParam() << ": conventional accepted but oo "
        << "rejected\n"
        << report.Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHistoryProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{60}));

TEST(RandomHistoryAggregate, OoAcceptsStrictlyMoreThanConventional) {
  size_t oo_accepted = 0;
  size_t conv_accepted = 0;
  size_t oo_only = 0;
  constexpr uint64_t kTrials = 200;
  for (uint64_t seed = 1; seed <= kTrials; ++seed) {
    RandomHistoryConfig config;
    config.seed = seed;
    config.num_txns = 4;
    config.ops_per_txn = 3;
    config.num_leaves = 2;
    config.keys_per_leaf = 16;  // many keys per page: commuting likely
    RandomHistory h = GenerateRandomHistory(config);
    ValidationReport report = Validator::Validate(h.ts.get());
    if (report.oo_serializable) ++oo_accepted;
    if (report.conventionally_serializable) ++conv_accepted;
    if (report.oo_serializable && !report.conventionally_serializable) {
      ++oo_only;
    }
    // Inclusion must hold on every trial.
    ASSERT_FALSE(report.conventionally_serializable &&
                 !report.oo_serializable)
        << "seed " << seed;
  }
  EXPECT_GE(oo_accepted, conv_accepted);
  EXPECT_GT(oo_only, 0u) << "expected some histories only oo accepts";
}

class SchedulerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerProperty, OpenNestedHistoriesValidate) {
  DatabaseOptions opts;
  opts.scheduler = SchedulerKind::kOpenNested;
  Database db(opts);
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  ObjectId tree = BpTree::Create(&db, "T", 4, 4);

  uint64_t seed = GetParam();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 97 + t);
      for (int i = 0; i < 12; ++i) {
        std::string key = "k" + std::to_string(rng.NextBelow(12));
        if (rng.NextBool(0.3)) {
          (void)db.RunTransaction("get", [&](MethodContext& txn) {
            Value out;
            return txn.Call(tree, BpTree::Search(key), &out);
          });
        } else {
          (void)db.RunTransaction("ins", [&](MethodContext& txn) {
            return txn.Call(tree, BpTree::Insert(key, "v"));
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable)
      << "seed " << seed << "\n"
      << report.Summary();
}

TEST_P(SchedulerProperty, Flat2PLHistoriesConventionallySerializable) {
  DatabaseOptions opts;
  opts.scheduler = SchedulerKind::kFlat2PL;
  Database db(opts);
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  ObjectId tree = BpTree::Create(&db, "T", 8, 8);

  uint64_t seed = GetParam();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 131 + t);
      for (int i = 0; i < 10; ++i) {
        std::string key = "k" + std::to_string(rng.NextBelow(10));
        (void)db.RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(tree, BpTree::Insert(key, "v"));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.conventionally_serializable)
      << "seed " << seed << "\n"
      << report.Summary();
  EXPECT_TRUE(report.oo_serializable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace oodb
