#include "model/value.h"

#include <gtest/gtest.h>

#include "model/invocation.h"

namespace oodb {
namespace {

TEST(ValueTest, NoneByDefault) {
  Value v;
  EXPECT_TRUE(v.IsNone());
  EXPECT_FALSE(v.IsInt());
  EXPECT_FALSE(v.IsString());
  EXPECT_EQ(v.ToString(), "none");
}

TEST(ValueTest, IntValue) {
  Value v(42);
  EXPECT_TRUE(v.IsInt());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, NegativeInt) {
  Value v(int64_t{-7});
  EXPECT_EQ(v.AsInt(), -7);
  EXPECT_EQ(v.ToString(), "-7");
}

TEST(ValueTest, StringValue) {
  Value v("DBS");
  EXPECT_TRUE(v.IsString());
  EXPECT_EQ(v.AsString(), "DBS");
  EXPECT_EQ(v.ToString(), "DBS");
}

TEST(ValueTest, WrongTypeAccessorsAreSafe) {
  Value i(5);
  Value s("x");
  EXPECT_EQ(i.AsString(), "");
  EXPECT_EQ(s.AsInt(), 0);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value(1), Value("1"));  // type matters
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ListToString) {
  ValueList l{Value("DBS"), Value(3)};
  EXPECT_EQ(ToString(l), "(DBS, 3)");
  EXPECT_EQ(ToString(ValueList{}), "()");
}

TEST(InvocationTest, ToStringAndEquality) {
  Invocation a("insert", {Value("DBS")});
  Invocation b("insert", {Value("DBS")});
  Invocation c("insert", {Value("DBMS")});
  Invocation d("search", {Value("DBS")});
  EXPECT_EQ(a.ToString(), "insert(DBS)");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(InvocationTest, NoParams) {
  Invocation i("readSeq");
  EXPECT_EQ(i.ToString(), "readSeq()");
}

}  // namespace
}  // namespace oodb
