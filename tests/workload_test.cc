#include <gtest/gtest.h>

#include "containers/directory.h"
#include "schedule/validator.h"
#include "workload/harness.h"
#include "workload/random_history.h"

namespace oodb {
namespace {

TEST(HarnessTest, RunsAllTransactions) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  HarnessConfig config;
  config.threads = 4;
  config.txns_per_thread = 20;
  HarnessResult result = Harness::Run(
      &db, config, [dir](size_t thread, size_t index) -> TransactionBody {
        std::string key =
            "k" + std::to_string(thread) + "_" + std::to_string(index);
        return [dir, key](MethodContext& txn) {
          return txn.Call(dir, Invocation("insert", {Value(key), Value("v")}));
        };
      });
  EXPECT_EQ(result.committed, 80u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_GT(result.Throughput(), 0.0);
  EXPECT_EQ(result.latency_ns.count(), 80u);
  EXPECT_FALSE(result.Row().empty());
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.size(), 80u);
}

TEST(HarnessTest, CountsAborts) {
  Database db;
  RegisterDirectoryMethods(&db);
  CreateDirectory(&db, "D");
  HarnessConfig config;
  config.threads = 2;
  config.txns_per_thread = 5;
  HarnessResult result =
      Harness::Run(&db, config, [](size_t, size_t) -> TransactionBody {
        return [](MethodContext&) { return Status::Aborted("always"); };
      });
  EXPECT_EQ(result.committed, 0u);
  EXPECT_EQ(result.aborted, 10u);
}

TEST(RandomHistoryTest, DeterministicForSeed) {
  RandomHistoryConfig config;
  config.seed = 7;
  RandomHistory a = GenerateRandomHistory(config);
  RandomHistory b = GenerateRandomHistory(config);
  ASSERT_EQ(a.ts->action_count(), b.ts->action_count());
  for (uint64_t i = 0; i < a.ts->action_count(); ++i) {
    EXPECT_EQ(a.ts->action(ActionId(i)).timestamp,
              b.ts->action(ActionId(i)).timestamp);
    EXPECT_EQ(a.ts->action(ActionId(i)).invocation.ToString(),
              b.ts->action(ActionId(i)).invocation.ToString());
  }
}

TEST(RandomHistoryTest, StructureMatchesConfig) {
  RandomHistoryConfig config;
  config.num_txns = 5;
  config.ops_per_txn = 4;
  config.num_leaves = 3;
  RandomHistory h = GenerateRandomHistory(config);
  EXPECT_EQ(h.txns.size(), 5u);
  EXPECT_EQ(h.leaves.size(), 3u);
  EXPECT_EQ(h.ts->TopLevel().size(), 5u);
  // Every transaction has ops_per_txn tree-level calls.
  for (ActionId t : h.txns) {
    EXPECT_EQ(h.ts->action(t).children.size(), 4u);
  }
  // All primitives stamped.
  for (ObjectId page : h.pages) {
    for (ActionId a : h.ts->ActionsOn(page)) {
      EXPECT_GT(h.ts->action(a).timestamp, 0u);
    }
  }
}

TEST(RandomHistoryTest, ProgramOrderPreserved) {
  RandomHistoryConfig config;
  config.num_txns = 6;
  config.ops_per_txn = 5;
  config.seed = 11;
  RandomHistory h = GenerateRandomHistory(config);
  // Within one transaction, primitive timestamps are increasing in call
  // order (the generator interleaves across transactions only).
  for (ActionId top : h.txns) {
    uint64_t last = 0;
    for (ActionId tree_op : h.ts->action(top).children) {
      for (ActionId leaf_op : h.ts->action(tree_op).children) {
        for (ActionId prim : h.ts->action(leaf_op).children) {
          uint64_t ts = h.ts->action(prim).timestamp;
          EXPECT_GT(ts, last);
          last = ts;
        }
      }
    }
  }
}

TEST(RandomHistoryTest, GeneratedHistoriesAreConform) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomHistoryConfig config;
    config.seed = seed;
    RandomHistory h = GenerateRandomHistory(config);
    ValidationOptions opts;
    ValidationReport report = Validator::Validate(h.ts.get(), opts);
    EXPECT_TRUE(report.conform) << "seed " << seed << "\n"
                                << report.Summary();
  }
}

}  // namespace
}  // namespace oodb
