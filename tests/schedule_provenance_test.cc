// Edge provenance and witness extraction:
//
//   * record_provenance off (the default) keeps the report free of
//     provenance, schedules, and chains — and changes nothing else;
//   * every failed Def 13 / Def 16 / Def 7 verdict carries a witness,
//     and accepted executions carry none;
//   * with recording on, every witness edge expands to a well-formed
//     derivation chain ending in an Axiom 1 primitive conflict, each
//     step induced by the next (Def 10 up the call trees, Def 11/15
//     across objects);
//   * the indexed engine's provenance is equally valid (its cause
//     pairs may differ from the reference engine's — both engines
//     derive the same edges from different enumeration orders);
//   * reports are byte-stable across repeated runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "schedule/validator.h"
#include "workload/anomalies.h"

namespace oodb {
namespace {

ValidationReport RunAnomaly(AnomalyKind kind, bool bad, bool provenance,
                     size_t threads = 1) {
  std::unique_ptr<TransactionSystem> ts = MakeAnomaly(kind, bad);
  ValidationOptions options;
  options.record_provenance = provenance;
  options.num_threads = threads;
  return Validator::Validate(ts.get(), options);
}

/// A chain is well-formed when each step explains the previous step's
/// inducing fact and the walk bottoms out in an Axiom 1 record whose
/// timestamps agree with the edge direction.
void ExpectChainWellFormed(const TransactionSystem& ts,
                           const Witness::Edge& edge) {
  ASSERT_FALSE(edge.chain.empty());
  EXPECT_EQ(edge.chain.front().from, edge.from);
  EXPECT_EQ(edge.chain.front().to, edge.to);
  EXPECT_EQ(edge.chain.front().relation, edge.relation);
  for (size_t i = 0; i + 1 < edge.chain.size(); ++i) {
    const ProvenanceStep& cur = edge.chain[i];
    const ProvenanceStep& next = edge.chain[i + 1];
    ASSERT_NE(cur.rule, DepRule::kAxiom1) << "axiom1 must be terminal";
    if (cur.rule == DepRule::kDef10) {
      // Inherited from a conflicting action pair at the same object.
      EXPECT_EQ(next.from, cur.cause_from);
      EXPECT_EQ(next.to, cur.cause_to);
      EXPECT_EQ(next.object, cur.object);
    } else {
      // Def 11/15 place the same transaction dependency; the next step
      // explains it at the object where it was recorded.
      EXPECT_EQ(next.from, cur.from);
      EXPECT_EQ(next.to, cur.to);
      EXPECT_EQ(next.object, cur.cause_object);
      EXPECT_EQ(next.relation, DepRelation::kTxn);
    }
  }
  const ProvenanceStep& last = edge.chain.back();
  EXPECT_EQ(last.rule, DepRule::kAxiom1);
  EXPECT_GT(ts.action(last.from).timestamp, 0u);
  EXPECT_LT(ts.action(last.from).timestamp, ts.action(last.to).timestamp);
}

TEST(ProvenanceTest, OffByDefaultAndReportUnchanged) {
  ValidationReport off = RunAnomaly(AnomalyKind::kLostUpdate, true, false);
  ValidationReport on = RunAnomaly(AnomalyKind::kLostUpdate, true, true);

  EXPECT_EQ(off.provenance, nullptr);
  EXPECT_TRUE(off.schedules.empty());
  ASSERT_NE(on.provenance, nullptr);
  EXPECT_GT(on.provenance->EdgeCount(), 0u);
  EXPECT_FALSE(on.schedules.empty());

  // Recording changes nothing about the verdict, the statistics, the
  // diagnostics, or the witness cycles — only the attached evidence.
  EXPECT_EQ(off.oo_serializable, on.oo_serializable);
  EXPECT_EQ(off.conventionally_serializable, on.conventionally_serializable);
  EXPECT_EQ(off.conform, on.conform);
  EXPECT_EQ(off.diagnostics, on.diagnostics);
  ASSERT_EQ(off.witnesses.size(), on.witnesses.size());
  for (size_t i = 0; i < off.witnesses.size(); ++i) {
    EXPECT_EQ(off.witnesses[i].kind, on.witnesses[i].kind);
    EXPECT_EQ(off.witnesses[i].cycle, on.witnesses[i].cycle);
    for (const Witness::Edge& e : off.witnesses[i].edges) {
      EXPECT_TRUE(e.chain.empty());
    }
  }
}

TEST(ProvenanceTest, EveryFailedVerdictCarriesWitness) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    ValidationReport bad = RunAnomaly(kind, /*bad=*/true, /*provenance=*/false);
    EXPECT_FALSE(bad.oo_serializable) << AnomalyKindName(kind);
    EXPECT_FALSE(bad.witnesses.empty()) << AnomalyKindName(kind);
    for (const Witness& w : bad.witnesses) {
      if (w.kind == Witness::Kind::kConformance) {
        EXPECT_EQ(w.cycle.size(), 2u);
        continue;
      }
      ASSERT_GE(w.cycle.size(), 2u) << AnomalyKindName(kind);
      EXPECT_EQ(w.cycle.front(), w.cycle.back());
      EXPECT_EQ(w.edges.size(), w.cycle.size() - 1);
      EXPECT_TRUE(w.object.valid());
    }

    ValidationReport good = RunAnomaly(kind, /*bad=*/false, /*provenance=*/false);
    EXPECT_TRUE(good.oo_serializable) << AnomalyKindName(kind);
    EXPECT_TRUE(good.witnesses.empty()) << AnomalyKindName(kind);
  }
}

TEST(ProvenanceTest, ChainsExpandToAxiom1) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    std::unique_ptr<TransactionSystem> ts = MakeAnomaly(kind, /*bad=*/true);
    ValidationOptions options;
    options.record_provenance = true;
    ValidationReport report = Validator::Validate(ts.get(), options);
    ASSERT_FALSE(report.witnesses.empty()) << AnomalyKindName(kind);
    for (const Witness& w : report.witnesses) {
      if (w.kind == Witness::Kind::kConformance) continue;
      for (const Witness::Edge& e : w.edges) {
        ExpectChainWellFormed(*ts, e);
      }
    }
  }
}

TEST(ProvenanceTest, IndexedEngineProvenanceIsValid) {
  for (size_t threads : {size_t{2}, size_t{4}}) {
    std::unique_ptr<TransactionSystem> ts =
        MakeAnomaly(AnomalyKind::kWriteSkew, /*bad=*/true);
    ValidationOptions options;
    options.record_provenance = true;
    options.num_threads = threads;
    ValidationReport report = Validator::Validate(ts.get(), options);
    EXPECT_FALSE(report.oo_serializable);
    ASSERT_NE(report.provenance, nullptr);
    EXPECT_GT(report.provenance->EdgeCount(), 0u);
    ASSERT_FALSE(report.witnesses.empty());
    for (const Witness& w : report.witnesses) {
      if (w.kind == Witness::Kind::kConformance) continue;
      for (const Witness::Edge& e : w.edges) {
        ExpectChainWellFormed(*ts, e);
      }
    }
  }
}

TEST(ProvenanceTest, IndexedOffLeavesReportIdenticalToSerial) {
  ValidationReport serial = RunAnomaly(AnomalyKind::kPhantom, true, false, 1);
  ValidationReport indexed = RunAnomaly(AnomalyKind::kPhantom, true, false, 4);
  EXPECT_EQ(indexed.provenance, nullptr);
  EXPECT_TRUE(indexed.schedules.empty());
  EXPECT_EQ(serial.oo_serializable, indexed.oo_serializable);
  EXPECT_EQ(serial.diagnostics, indexed.diagnostics);
  ASSERT_EQ(serial.witnesses.size(), indexed.witnesses.size());
  for (size_t i = 0; i < serial.witnesses.size(); ++i) {
    EXPECT_EQ(serial.witnesses[i].kind, indexed.witnesses[i].kind);
    EXPECT_EQ(serial.witnesses[i].cycle, indexed.witnesses[i].cycle);
  }
}

TEST(ProvenanceTest, DiagnosticsAndWitnessesAreByteStable) {
  ValidationReport a = RunAnomaly(AnomalyKind::kInconsistentRead, true, true);
  ValidationReport b = RunAnomaly(AnomalyKind::kInconsistentRead, true, true);
  EXPECT_EQ(a.diagnostics, b.diagnostics);
  ASSERT_EQ(a.witnesses.size(), b.witnesses.size());
  for (size_t i = 0; i < a.witnesses.size(); ++i) {
    EXPECT_EQ(a.witnesses[i].cycle, b.witnesses[i].cycle);
    ASSERT_EQ(a.witnesses[i].edges.size(), b.witnesses[i].edges.size());
    for (size_t j = 0; j < a.witnesses[i].edges.size(); ++j) {
      const Witness::Edge& ea = a.witnesses[i].edges[j];
      const Witness::Edge& eb = b.witnesses[i].edges[j];
      EXPECT_EQ(ea.from, eb.from);
      EXPECT_EQ(ea.to, eb.to);
      ASSERT_EQ(ea.chain.size(), eb.chain.size());
      for (size_t k = 0; k < ea.chain.size(); ++k) {
        EXPECT_EQ(ea.chain[k].rule, eb.chain[k].rule);
        EXPECT_EQ(ea.chain[k].from, eb.chain[k].from);
        EXPECT_EQ(ea.chain[k].to, eb.chain[k].to);
        EXPECT_EQ(ea.chain[k].cause_from, eb.chain[k].cause_from);
        EXPECT_EQ(ea.chain[k].cause_to, eb.chain[k].cause_to);
      }
    }
  }
}

}  // namespace
}  // namespace oodb
