// Closed nested transactions vs open nested transactions: same semantic
// lock modes, but closed nesting never releases before top-level commit
// (the paper, section 2: with "closed nested transactions only
// top-level-transactions are isolated from each other; subtransactions
// of open nested transactions are isolated against other
// subtransactions").

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <thread>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

std::unique_ptr<Database> MakeDb(SchedulerKind kind) {
  DatabaseOptions opts;
  opts.scheduler = kind;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(3000);
  auto db = std::make_unique<Database>(opts);
  RegisterPageMethods(db.get());
  BpTree::RegisterMethods(db.get());
  return db;
}

TEST(ClosedNestedTest, NameRegistered) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kClosedNested),
               "closed-nested");
}

TEST(ClosedNestedTest, BasicOperationsWork) {
  auto db = MakeDb(SchedulerKind::kClosedNested);
  ObjectId tree = BpTree::Create(db.get(), "T", 8, 8);
  ASSERT_TRUE(db->RunTransaction("ins", [&](MethodContext& txn) {
                  return txn.Call(tree, BpTree::Insert("a", "1"));
                }).ok());
  Value out;
  ASSERT_TRUE(db->RunTransaction("get", [&](MethodContext& txn) {
                  return txn.Call(tree, BpTree::Search("a"), &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "1");
  EXPECT_EQ(db->locks().LockCount(), 0u);
}

TEST(ClosedNestedTest, LocksAccumulateUntilCommit) {
  // Open nesting sheds low-level locks as actions complete; closed
  // nesting drags everything to the top.
  for (SchedulerKind kind :
       {SchedulerKind::kOpenNested, SchedulerKind::kClosedNested}) {
    auto db = MakeDb(kind);
    ObjectId tree = BpTree::Create(db.get(), "T", 8, 8);
    size_t held_inside = 0;
    ASSERT_TRUE(db->RunTransaction("ins", [&](MethodContext& txn) {
                    OODB_RETURN_IF_ERROR(
                        txn.Call(tree, BpTree::Insert("a", "1")));
                    held_inside = db->locks().LockCount();
                    return Status::OK();
                  }).ok());
    if (kind == SchedulerKind::kOpenNested) {
      // Only the tree-level semantic lock survives the nested commits.
      EXPECT_EQ(held_inside, 1u) << SchedulerKindName(kind);
    } else {
      // Tree lock + leaf lock + page read/write locks all retained.
      EXPECT_GE(held_inside, 3u) << SchedulerKindName(kind);
    }
    EXPECT_EQ(db->locks().LockCount(), 0u);  // commit unwinds both
  }
}

/// Runs the "commuting keys, shared page" scenario: T1 inserts and then
/// stays open; T2 inserts a different key into the same leaf page.
/// Returns whether T2 committed while T1 was still open.
bool SecondInsertProceeds(SchedulerKind kind) {
  auto db = MakeDb(kind);
  ObjectId tree = BpTree::Create(db.get(), "T", /*leaf_capacity=*/64,
                                 /*fanout=*/8);
  std::mutex m;
  std::condition_variable cv;
  bool first_inserted = false;
  bool first_may_commit = false;
  std::atomic<bool> second_committed{false};

  std::thread t1([&] {
    Status st = db->RunTransaction("T1", [&](MethodContext& txn) {
      OODB_RETURN_IF_ERROR(txn.Call(tree, BpTree::Insert("aaa", "1")));
      {
        std::lock_guard<std::mutex> lock(m);
        first_inserted = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return first_may_commit; });
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
  });
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return first_inserted; });
  }

  std::thread t2([&] {
    Status st = db->RunTransaction("T2", [&](MethodContext& txn) {
      return txn.Call(tree, BpTree::Insert("bbb", "2"));
    });
    EXPECT_TRUE(st.ok()) << st;
    second_committed = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  bool proceeded = second_committed.load();

  {
    std::lock_guard<std::mutex> lock(m);
    first_may_commit = true;
  }
  cv.notify_all();
  t1.join();
  t2.join();
  EXPECT_TRUE(second_committed.load());

  ValidationReport report = Validator::Validate(&db->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  return proceeded;
}

TEST(ClosedNestedTest, OpenNestingAdmitsCommutingNeighbors) {
  EXPECT_TRUE(SecondInsertProceeds(SchedulerKind::kOpenNested));
}

TEST(ClosedNestedTest, ClosedNestingBlocksOnSharedPage) {
  // The keys commute at every semantic level, but closed nesting still
  // holds the page write lock of T1 until commit, so T2's page write
  // must wait — exactly the concurrency the paper's open nesting
  // recovers.
  EXPECT_FALSE(SecondInsertProceeds(SchedulerKind::kClosedNested));
}

TEST(ClosedNestedTest, ConcurrentStressIsSerializableAndConsistent) {
  auto db = MakeDb(SchedulerKind::kClosedNested);
  ObjectId tree = BpTree::Create(db.get(), "T", 8, 8);
  std::vector<std::thread> threads;
  std::atomic<int> committed{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        char key[16];
        std::snprintf(key, sizeof(key), "k%02d_%02d", t, i);
        Status st = db->RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(tree, BpTree::Insert(key, "v"));
        });
        if (st.ok()) committed.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(committed.load(), 0);
  EXPECT_EQ(db->locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

}  // namespace
}  // namespace oodb
