// Thread-safety hammer for the sharded runtime, sized to run under
// ThreadSanitizer: concurrent workers over striped lock tables, object
// creation racing object lookups on the sharded map, and an epoch
// flusher draining per-thread buffers while appends are in flight.
// These tests assert invariants, not throughput; TSan provides the
// real verdict (the CI tsan job runs them).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cc/database.h"
#include "cc/epoch_log.h"
#include "containers/escrow.h"
#include "util/random.h"

namespace oodb {
namespace {

TEST(ShardedStressTest, StripedLockTablesUnderContention) {
  // RW accounts: every mutator pair conflicts, so this drives the full
  // blocked path — per-shard condvar waits, the global waits-for graph,
  // deadlock verdicts, retries — across 8 stripes at once.
  DatabaseOptions options;
  options.shards = 8;
  options.history = HistoryMode::kEpochBatched;
  options.lock_options.wait_timeout = std::chrono::milliseconds(500);
  Database db(options);
  RegisterAccountMethods(&db, RWAccountType());
  constexpr int kAccounts = 12;
  std::vector<ObjectId> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(CreateAccount(&db, RWAccountType(),
                                     "R" + std::to_string(i), 1000));
  }

  std::atomic<uint64_t> ok{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 30; ++i) {
        // Unordered key pairs on purpose: deadlocks must occur and must
        // be detected, compensated, and retried without a data race.
        uint64_t a = rng.NextBelow(kAccounts);
        uint64_t b = rng.NextBelow(kAccounts);
        Status st = db.RunTransaction(
            "W" + std::to_string(t) + "." + std::to_string(i),
            [&](MethodContext& txn) {
              OODB_RETURN_IF_ERROR(txn.Call(
                  accounts[a], Invocation("deposit", {Value(1)})));
              return txn.Call(accounts[b],
                              Invocation("withdraw", {Value(1)}));
            });
        if (st.ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  while (db.AdvanceEpoch() > 0) {
  }
  EXPECT_GT(ok.load(), 0u);
  EXPECT_EQ(db.locks().LockCount(), 0u);
  // Net balance is conserved: every committed transaction moved 1 unit
  // and every aborted one was compensated.
  int64_t total = 0;
  for (ObjectId a : accounts) {
    total += db.StateOf<AccountState>(a)->balance;
  }
  EXPECT_EQ(total, int64_t(kAccounts) * 1000);
  // All stripes saw traffic in aggregate.
  uint64_t acquires = 0;
  for (const LockShardStats& s : db.locks().PerShardStats()) {
    acquires += s.acquires;
  }
  EXPECT_GT(acquires, 0u);
}

TEST(ShardedStressTest, ObjectMapReadersRaceCreators) {
  // Lookups take the per-stripe shared_mutex shared; CreateObject takes
  // it exclusive. Run both at once across every stripe.
  DatabaseOptions options;
  options.shards = 8;
  options.history = HistoryMode::kEpochBatched;
  Database db(options);
  RegisterAccountMethods(&db, EscrowAccountType());
  constexpr int kInitial = 8;
  std::vector<ObjectId> accounts(kInitial);
  for (int i = 0; i < kInitial; ++i) {
    accounts[i] = CreateAccount(&db, EscrowAccountType(),
                                "E" + std::to_string(i), 100);
  }

  std::atomic<bool> stop{false};
  std::thread creator([&] {
    for (int i = 0; i < 64; ++i) {
      CreateAccount(&db, EscrowAccountType(), "X" + std::to_string(i), 1);
      std::this_thread::yield();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(2000 + t);
      int i = 0;
      while (!stop.load(std::memory_order_relaxed) || i < 20) {
        ObjectId target = accounts[rng.NextBelow(kInitial)];
        Status st = db.RunTransaction(
            "B" + std::to_string(t) + "." + std::to_string(i++),
            [&](MethodContext& txn) {
              return txn.Call(target, Invocation("balance"));
            });
        EXPECT_TRUE(st.ok()) << st.ToString();
        if (i > 2000) break;  // safety valve
      }
    });
  }
  creator.join();
  for (auto& r : readers) r.join();
  while (db.AdvanceEpoch() > 0) {
  }
  EXPECT_EQ(db.locks().LockCount(), 0u);
}

TEST(ShardedStressTest, EpochFlusherRacesAppenders) {
  // A dedicated flusher advances the epoch continuously while workers
  // append; no event may be lost or duplicated.
  DatabaseOptions options;
  options.shards = 8;
  options.history = HistoryMode::kEpochBatched;
  Database db(options);
  HistoryEpochSink sink;
  db.SetEpochSink(&sink);
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId account = CreateAccount(&db, EscrowAccountType(), "E", 0);

  std::atomic<bool> stop{false};
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      db.AdvanceEpoch();
      std::this_thread::yield();
    }
  });
  constexpr int kThreads = 4;
  constexpr int kTxns = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxns; ++i) {
        Status st = db.RunTransaction(
            "F" + std::to_string(t) + "." + std::to_string(i),
            [&](MethodContext& txn) {
              return txn.Call(account,
                              Invocation("deposit", {Value(1)}));
            });
        EXPECT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true);
  flusher.join();
  while (db.AdvanceEpoch() > 0) {
  }
  // 2 events per transaction (deposit + commit), none lost.
  EXPECT_EQ(sink.event_count(), size_t(kThreads) * kTxns * 2);
  EXPECT_EQ(db.epoch_log()->appended(), uint64_t(kThreads) * kTxns * 2);
  EXPECT_EQ(db.StateOf<AccountState>(account)->balance,
            int64_t(kThreads) * kTxns);
}

}  // namespace
}  // namespace oodb
