#include "schedule/printer.h"

#include <gtest/gtest.h>

#include "paper_types.h"

namespace oodb {
namespace {

using testing::LeafType;
using testing::PageType;

struct PrinterWorld {
  TransactionSystem ts;
  ObjectId leaf, page;
  ActionId t1, t2;

  PrinterWorld() {
    leaf = ts.AddObject(LeafType(), "Leaf");
    page = ts.AddObject(PageType(), "Page");
    t1 = ts.BeginTopLevel("T1");
    t2 = ts.BeginTopLevel("T2");
    ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("k")}));
    ActionId w = ts.Call(a, page, Invocation("write"));
    ActionId b = ts.Call(t2, leaf, Invocation("search", {Value("k")}));
    ActionId r = ts.Call(b, page, Invocation("read"));
    ts.SetTimestamp(w, ts.NextTimestamp());
    ts.SetTimestamp(r, ts.NextTimestamp());
  }
};

TEST(PrinterTest, TransactionTreeShowsTimestamps) {
  PrinterWorld w;
  std::string tree = SchedulePrinter::TransactionTree(w.ts, w.t1);
  EXPECT_NE(tree.find("T1"), std::string::npos);
  EXPECT_NE(tree.find("Leaf.insert(k)"), std::string::npos);
  EXPECT_NE(tree.find("Page.write() @1"), std::string::npos);
}

TEST(PrinterTest, AllTreesCoversEveryTransaction) {
  PrinterWorld w;
  std::string all = SchedulePrinter::AllTrees(w.ts);
  EXPECT_NE(all.find("T1"), std::string::npos);
  EXPECT_NE(all.find("T2"), std::string::npos);
}

TEST(PrinterTest, DependencyTableListsObjectsAndTopLevel) {
  PrinterWorld w;
  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());
  std::string table = SchedulePrinter::DependencyTable(w.ts, engine);
  EXPECT_NE(table.find("Leaf"), std::string::npos);
  EXPECT_NE(table.find("Page"), std::string::npos);
  EXPECT_NE(table.find("(top-level)"), std::string::npos);
  // The same-key insert/search conflict reaches the top level.
  EXPECT_NE(table.find("T1->T2"), std::string::npos);
}

TEST(PrinterTest, CallForestDotIsWellFormed) {
  PrinterWorld w;
  std::string dot = SchedulePrinter::CallForestDot(w.ts);
  EXPECT_EQ(dot.rfind("digraph calls {", 0), 0u);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("Leaf.insert(k)"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
  // Balanced braces.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(PrinterTest, DependencyDotStylesEdges) {
  PrinterWorld w;
  DependencyEngine engine(w.ts);
  ASSERT_TRUE(engine.Compute().ok());
  std::string dot = SchedulePrinter::DependencyDot(w.ts, engine);
  EXPECT_EQ(dot.rfind("digraph deps {", 0), 0u);
  EXPECT_NE(dot.find("[style=solid]"), std::string::npos);   // action deps
  EXPECT_NE(dot.find("[style=dashed]"), std::string::npos);  // txn deps
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(PrinterTest, DotEscapingHandlesQuotes) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Le\"af");
  ActionId t1 = ts.BeginTopLevel("T1");
  ts.Call(t1, leaf, Invocation("insert", {Value("k")}));
  std::string dot = SchedulePrinter::CallForestDot(ts);
  EXPECT_NE(dot.find("Le\\\"af"), std::string::npos);
}

}  // namespace
}  // namespace oodb
