// Golden-trace contract: the fixed Fig 7 / Example 4 schedule, run
// single-threaded under a golden tracer, produces a byte-stable trace
// whose span tree matches the recorded transaction/action nesting.

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "apps/encyclopedia.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

struct GoldenRun {
  std::string jsonl;
  std::string chrome;
  std::vector<TraceSpan> spans;
  size_t runtime_actions = 0;  ///< action count before validation
};

/// One full instrumented Fig 7 run: the four Example 4 transactions,
/// then validation (whose extension instants also land in the trace).
GoldenRun RunFig7Golden() {
  MetricsRegistry registry;
  Tracer tracer(TracerOptions{.golden = true, .tag = "fig7"});
  Database db;
  db.AttachObservability(&registry, &tracer);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
  EXPECT_TRUE(db.RunTransaction("T1", [&](MethodContext& txn) {
                  return txn.Call(
                      enc, Encyclopedia::Insert("DBS", "database systems"));
                }).ok());
  EXPECT_TRUE(db.RunTransaction("T2", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
                  return txn.Call(enc,
                                  Encyclopedia::Change("DBMS", "dbms v2"));
                }).ok());
  EXPECT_TRUE(db.RunTransaction("T3", [&](MethodContext& txn) {
                  Value out;
                  return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
                }).ok());
  EXPECT_TRUE(db.RunTransaction("T4", [&](MethodContext& txn) {
                  Value out;
                  return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
                }).ok());

  GoldenRun run;
  run.runtime_actions = db.ts().action_count();

  ValidationOptions options;
  options.metrics = &registry;
  options.tracer = &tracer;
  ValidationReport report = Validator::Validate(&db.ts(), options);
  EXPECT_TRUE(report.oo_serializable) << report.Summary();

  run.jsonl = tracer.ToJsonLines();
  run.chrome = tracer.ToChromeTrace();
  run.spans = tracer.Spans();
  return run;
}

TEST(GoldenTraceTest, ByteStableAcrossRuns) {
  GoldenRun a = RunFig7Golden();
  GoldenRun b = RunFig7Golden();
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_FALSE(a.jsonl.empty());
  // Golden mode must keep wall-clock out of the export entirely: every
  // timestamp is a small logical tick, two per span plus instants.
  EXPECT_NE(a.jsonl.find("\"golden\":true"), std::string::npos);
}

TEST(GoldenTraceTest, PassesSchemaCheck) {
  GoldenRun run = RunFig7Golden();
  Status st = ValidateTraceLines(run.jsonl);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(GoldenTraceTest, SpanTreeMatchesActionNesting) {
  MetricsRegistry registry;
  Tracer tracer(TracerOptions{.golden = true, .tag = "fig7"});
  Database db;
  db.AttachObservability(&registry, &tracer);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
  ASSERT_TRUE(db.RunTransaction("T1", [&](MethodContext& txn) {
                  return txn.Call(
                      enc, Encyclopedia::Insert("DBS", "database systems"));
                }).ok());
  ASSERT_TRUE(db.RunTransaction("T2", [&](MethodContext& txn) {
                  Value out;
                  return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
                }).ok());

  const TransactionSystem& ts = db.ts();
  std::vector<TraceSpan> spans = tracer.Spans();
  // Every recorded action got exactly one span (span ids ARE action
  // ids), and no span refers outside the recorded system.
  EXPECT_EQ(spans.size(), ts.action_count());
  std::unordered_map<uint64_t, const TraceSpan*> by_id;
  for (const TraceSpan& s : spans) {
    ASSERT_LT(s.id, ts.action_count());
    EXPECT_TRUE(by_id.emplace(s.id, &s).second) << "duplicate " << s.id;
  }
  for (const TraceSpan& s : spans) {
    const ActionRecord& rec = ts.action(ActionId(s.id));
    EXPECT_EQ(s.parent, rec.parent.value) << s.name;
    EXPECT_EQ(s.txn, rec.top_level.value) << s.name;
    // Level == call-tree depth.
    uint32_t depth = 0;
    for (ActionId cur = rec.parent; cur.valid();
         cur = ts.action(cur).parent) {
      ++depth;
    }
    EXPECT_EQ(s.level, depth) << s.name;
    if (s.level == 0) {
      EXPECT_EQ(s.parent, ActionId::kInvalid);
      EXPECT_EQ(s.outcome, "commit");
    } else {
      // Child spans nest inside their parent's tick window.
      auto it = by_id.find(s.parent);
      ASSERT_NE(it, by_id.end()) << s.name;
      EXPECT_GE(s.start, it->second->start);
      EXPECT_LE(s.end, it->second->end);
    }
  }
}

TEST(GoldenTraceTest, MetricsSnapshotCoversRuntimeAndEngine) {
  // The registry side of the same instrumented run: runtime counters,
  // validator stats, and (with the indexed engine) memo counters all
  // land in one snapshot.
  MetricsRegistry registry;
  Database db;
  db.AttachObservability(&registry, nullptr);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
  ASSERT_TRUE(db.RunTransaction("T1", [&](MethodContext& txn) {
                  return txn.Call(enc,
                                  Encyclopedia::Insert("DBS", "d"));
                }).ok());
  db.counters().PublishTo(&registry);

  ValidationOptions options;
  options.metrics = &registry;
  options.num_threads = 2;  // indexed engine -> memo counters
  ValidationReport report = Validator::Validate(&db.ts(), options);
  ASSERT_TRUE(report.oo_serializable);

  std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("db.lock.acquires"), std::string::npos);
  EXPECT_NE(json.find("db.txn.committed"), std::string::npos);
  EXPECT_NE(json.find("run.committed"), std::string::npos);
  EXPECT_NE(json.find("dep.memo.hits"), std::string::npos);
  EXPECT_NE(json.find("dep.stage.fixpoint_ns"), std::string::npos);
  EXPECT_NE(json.find("validate.oo_serializable"), std::string::npos);
  EXPECT_EQ(registry.GetGauge("validate.oo_serializable")->Value(), 1);
  EXPECT_EQ(registry.GetGauge("run.committed")->Value(), 1);
}

}  // namespace
}  // namespace oodb
