// CommutativitySpec contract test: every registered object type's
// specification must be symmetric (Commutes(a, b) == Commutes(b, a))
// over a broad sample of invocations — Def 9's relation is unordered,
// and the lock manager and dependency engine both rely on it.

#include <gtest/gtest.h>

#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "containers/bptree.h"
#include "containers/directory.h"
#include "containers/fifo_queue.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"
#include "model/type_registry.h"

namespace oodb {
namespace {

std::vector<Invocation> SampleInvocations() {
  std::vector<Invocation> samples;
  // Keyed container ops over two keys.
  for (const char* method :
       {"insert", "search", "erase", "update", "lookup", "remove",
        "append", "change", "editSection", "readSection"}) {
    samples.emplace_back(method, ValueList{Value("k1"), Value("v")});
    samples.emplace_back(method, ValueList{Value("k2"), Value("v")});
    samples.emplace_back(method, ValueList{Value(int64_t{1}), Value("v")});
  }
  // Page / primitive ops.
  for (const char* method : {"read", "write", "scan", "routeLE", "count",
                             "contains", "readSeq", "readAll"}) {
    samples.emplace_back(method, ValueList{Value("k1")});
  }
  // Range scans.
  samples.emplace_back("scan", ValueList{Value("a"), Value("m")});
  samples.emplace_back("scan", ValueList{Value("n"), Value("z")});
  // Structural ops.
  for (const char* method :
       {"split", "insertSep", "rearrange", "freeze", "stamp", "moveTo"}) {
    samples.emplace_back(method, ValueList{Value("k1")});
  }
  // Bank / account ops.
  samples.emplace_back("deposit", ValueList{Value(0), Value(5)});
  samples.emplace_back("withdraw", ValueList{Value(0), Value(5)});
  samples.emplace_back("withdraw", ValueList{Value(1), Value(5)});
  samples.emplace_back("transfer",
                       ValueList{Value(0), Value(1), Value(5)});
  samples.emplace_back("transfer",
                       ValueList{Value(2), Value(3), Value(5)});
  samples.emplace_back("balance", ValueList{Value(0)});
  samples.emplace_back("audit", ValueList{});
  // Queue ops.
  samples.emplace_back("enq", ValueList{Value("x")});
  samples.emplace_back("deq", ValueList{});
  // No-param edge cases.
  samples.emplace_back("insert", ValueList{});
  samples.emplace_back("", ValueList{});
  return samples;
}

TEST(SpecSymmetryTest, AllRegisteredTypesAreSymmetric) {
  // Register everything so the global registry is fully populated.
  Database db;
  Encyclopedia::RegisterMethods(&db);
  Document::RegisterMethods(&db);
  HashIndex::RegisterMethods(&db);
  RegisterDirectoryMethods(&db);
  RegisterQueueMethods(&db);
  for (BankSemantics s : {BankSemantics::kEscrow, BankSemantics::kNameOnly,
                          BankSemantics::kReadWrite}) {
    Bank::RegisterMethods(&db, s);
  }

  std::vector<Invocation> samples = SampleInvocations();
  std::vector<std::string> names = TypeRegistry::Global().Names();
  ASSERT_GE(names.size(), 12u) << "registry unexpectedly small";
  for (const std::string& name : names) {
    const ObjectType* type = TypeRegistry::Global().Find(name);
    ASSERT_NE(type, nullptr);
    for (const Invocation& a : samples) {
      for (const Invocation& b : samples) {
        EXPECT_EQ(type->Commutes(a, b), type->Commutes(b, a))
            << name << ": " << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(SpecSymmetryTest, ReflexiveReadsCommuteEverywhere) {
  Database db;
  Encyclopedia::RegisterMethods(&db);
  // A pure same-argument reader should commute with itself on every
  // type that declares it.
  Invocation search("search", {Value("k")});
  EXPECT_TRUE(EncObjectType()->Commutes(search, search));
  EXPECT_TRUE(BpTreeObjectType()->Commutes(search, search));
  EXPECT_TRUE(LeafObjectType()->Commutes(search, search));
  Invocation read("read", {Value("k")});
  EXPECT_TRUE(PageObjectType()->Commutes(read, read));
  EXPECT_TRUE(ItemObjectType()->Commutes(Invocation("read"),
                                         Invocation("read")));
}

}  // namespace
}  // namespace oodb
