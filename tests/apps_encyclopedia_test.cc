#include "apps/encyclopedia.h"

#include <gtest/gtest.h>

#include <thread>

#include "containers/codec.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

class EncyclopediaTest : public ::testing::Test {
 protected:
  void Build(SchedulerKind scheduler = SchedulerKind::kOpenNested,
             size_t leaf_capacity = 8) {
    DatabaseOptions opts;
    opts.scheduler = scheduler;
    db_ = std::make_unique<Database>(opts);
    Encyclopedia::RegisterMethods(db_.get());
    enc_ = Encyclopedia::Create(db_.get(), "Enc", leaf_capacity,
                                /*fanout=*/8, /*items_per_page=*/4,
                                /*list_page_capacity=*/16);
  }

  Status Run(const Invocation& inv, Value* out = nullptr) {
    return db_->RunTransaction("T", [&](MethodContext& txn) {
      return txn.Call(enc_, inv, out);
    });
  }

  std::unique_ptr<Database> db_;
  ObjectId enc_;
};

TEST_F(EncyclopediaTest, InsertAndSearch) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("DBS", "database systems")).ok());
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("DBS"), &out).ok());
  EXPECT_EQ(out.AsString(), "database systems");
  ASSERT_TRUE(Run(Encyclopedia::Search("nope"), &out).ok());
  EXPECT_TRUE(out.IsNone());
}

TEST_F(EncyclopediaTest, DuplicateInsertRefused) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("DBS", "x")).ok());
  Status st = Run(Encyclopedia::Insert("DBS", "y"));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("DBS"), &out).ok());
  EXPECT_EQ(out.AsString(), "x");
}

TEST_F(EncyclopediaTest, ChangeUpdatesItem) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("DBMS", "v1")).ok());
  Value old;
  ASSERT_TRUE(Run(Encyclopedia::Change("DBMS", "v2"), &old).ok());
  EXPECT_EQ(old.AsString(), "v1");
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("DBMS"), &out).ok());
  EXPECT_EQ(out.AsString(), "v2");
}

TEST_F(EncyclopediaTest, ChangeAbsentKeyFails) {
  Build();
  EXPECT_TRUE(Run(Encyclopedia::Change("ghost", "x")).IsNotFound());
}

TEST_F(EncyclopediaTest, ReadSeqInInsertionOrder) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("zebra", "z-item")).ok());
  ASSERT_TRUE(Run(Encyclopedia::Insert("apple", "a-item")).ok());
  ASSERT_TRUE(Run(Encyclopedia::Insert("mango", "m-item")).ok());
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::ReadSeq(), &out).ok());
  auto fields = SplitFields(out.AsString());
  ASSERT_EQ(fields.size(), 6u);
  // Insertion order, not key order.
  EXPECT_EQ(fields[0], "zebra");
  EXPECT_EQ(fields[1], "z-item");
  EXPECT_EQ(fields[2], "apple");
  EXPECT_EQ(fields[4], "mango");
}

TEST_F(EncyclopediaTest, EraseRemovesEverywhere) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("a", "1")).ok());
  ASSERT_TRUE(Run(Encyclopedia::Insert("b", "2")).ok());
  Value old;
  ASSERT_TRUE(Run(Encyclopedia::Erase("a"), &old).ok());
  EXPECT_EQ(old.AsString(), "1");
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("a"), &out).ok());
  EXPECT_TRUE(out.IsNone());
  ASSERT_TRUE(Run(Encyclopedia::ReadSeq(), &out).ok());
  auto fields = SplitFields(out.AsString());
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "b");
}

TEST_F(EncyclopediaTest, InsertAbortLeavesNoTrace) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("keep", "k")).ok());
  (void)db_->RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(enc_, Encyclopedia::Insert("gone", "g")));
    return Status::Aborted("rollback");
  });
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("gone"), &out).ok());
  EXPECT_TRUE(out.IsNone());
  ASSERT_TRUE(Run(Encyclopedia::ReadSeq(), &out).ok());
  auto fields = SplitFields(out.AsString());
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "keep");
}

TEST_F(EncyclopediaTest, ManyItemsAcrossSplits) {
  Build(SchedulerKind::kOpenNested, /*leaf_capacity=*/4);
  for (int i = 0; i < 60; ++i) {
    std::string key = "key" + std::to_string(100 + i);
    ASSERT_TRUE(Run(Encyclopedia::Insert(key, "data" + key)).ok()) << i;
  }
  for (int i = 0; i < 60; ++i) {
    std::string key = "key" + std::to_string(100 + i);
    Value out;
    ASSERT_TRUE(Run(Encyclopedia::Search(key), &out).ok());
    EXPECT_EQ(out.AsString(), "data" + key);
  }
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::ReadSeq(), &out).ok());
  EXPECT_EQ(SplitFields(out.AsString()).size(), 120u);
}

TEST_F(EncyclopediaTest, SequentialHistoryValidates) {
  Build();
  ASSERT_TRUE(Run(Encyclopedia::Insert("DBS", "x")).ok());
  ASSERT_TRUE(Run(Encyclopedia::Insert("DBMS", "y")).ok());
  ASSERT_TRUE(Run(Encyclopedia::Change("DBMS", "y2")).ok());
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("DBS"), &out).ok());
  ASSERT_TRUE(Run(Encyclopedia::ReadSeq(), &out).ok());
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conventionally_serializable);
  EXPECT_TRUE(report.conform);
}

TEST_F(EncyclopediaTest, ConcurrentAuthorsValidate) {
  // The paper's four-transaction world run concurrently many times.
  Build();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        std::string key = "k" + std::to_string(t) + "_" + std::to_string(i);
        (void)db_->RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(enc_, Encyclopedia::Insert(key, "d"));
        });
        if (i % 3 == 0) {
          (void)db_->RunTransaction("chg", [&](MethodContext& txn) {
            return txn.Call(enc_, Encyclopedia::Change(key, "d2"));
          });
        }
        if (i % 5 == 0) {
          Value out;
          (void)db_->RunTransaction("get", [&](MethodContext& txn) {
            return txn.Call(enc_, Encyclopedia::Search(key), &out);
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db_->locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST_F(EncyclopediaTest, WorksUnderFlat2PL) {
  Build(SchedulerKind::kFlat2PL);
  ASSERT_TRUE(Run(Encyclopedia::Insert("a", "1")).ok());
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("a"), &out).ok());
  EXPECT_EQ(out.AsString(), "1");
}

TEST_F(EncyclopediaTest, WorksUnderObjectExclusive) {
  Build(SchedulerKind::kObjectExclusive);
  ASSERT_TRUE(Run(Encyclopedia::Insert("a", "1")).ok());
  Value out;
  ASSERT_TRUE(Run(Encyclopedia::Search("a"), &out).ok());
  EXPECT_EQ(out.AsString(), "1");
}

}  // namespace
}  // namespace oodb
