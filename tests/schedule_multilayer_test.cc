#include "schedule/multilayer.h"

#include <gtest/gtest.h>

#include "schedule/validator.h"
#include "workload/random_history.h"
#include "paper_types.h"

namespace oodb {
namespace {

using testing::BpTreeType;
using testing::LeafType;
using testing::PageType;

Invocation Ins(const std::string& k) {
  return Invocation("insert", {Value(k)});
}

void Stamp(TransactionSystem* ts, ActionId a) {
  ts->SetTimestamp(a, ts->NextTimestamp());
}

/// tree -> leaf -> page, one insert per transaction.
struct LayeredWorld {
  TransactionSystem ts;
  ObjectId tree, leaf, page;

  LayeredWorld() {
    tree = ts.AddObject(BpTreeType(), "Tree");
    leaf = ts.AddObject(LeafType(), "Leaf");
    page = ts.AddObject(PageType(), "Page");
  }

  ActionId AddInsert(const std::string& txn, const std::string& key) {
    ActionId top = ts.BeginTopLevel(txn);
    ActionId t = ts.Call(top, tree, Ins(key));
    ActionId l = ts.Call(t, leaf, Ins(key));
    ActionId w = ts.Call(l, page, Invocation("write"));
    Stamp(&ts, w);
    return top;
  }
};

TEST(MultiLayerTest, InfersLayersOfUniformSystem) {
  LayeredWorld w;
  w.AddInsert("T1", "a");
  w.AddInsert("T2", "b");
  auto layers = MultiLayerChecker::InferLayers(w.ts);
  ASSERT_TRUE(layers.ok()) << layers.status();
  EXPECT_EQ(layers->num_layers, 3u);
  EXPECT_EQ(layers->LayerOf(w.page), 0u);
  EXPECT_EQ(layers->LayerOf(w.leaf), 1u);
  EXPECT_EQ(layers->LayerOf(w.tree), 2u);
}

TEST(MultiLayerTest, LayeredCommutingScheduleSerializable) {
  LayeredWorld w;
  w.AddInsert("T1", "a");
  w.AddInsert("T2", "b");
  MultiLayerResult result = MultiLayerChecker::Check(w.ts);
  ASSERT_TRUE(result.layered) << result.not_layered_reason;
  EXPECT_TRUE(result.serializable);
  ASSERT_EQ(result.level_graphs.size(), 3u);
  // Page-level conflicts inherit one level: edges at level 0, none at
  // the leaf level (commuting keys).
  EXPECT_GT(result.level_graphs[0].EdgeCount(), 0u);
  EXPECT_EQ(result.level_graphs[1].EdgeCount(), 0u);
}

TEST(MultiLayerTest, MixedDepthAccessNotLayered) {
  // A transaction calls the page directly (depth 1) while another
  // reaches it through tree -> leaf (depth 3).
  LayeredWorld w;
  w.AddInsert("T1", "a");
  ActionId t2 = w.ts.BeginTopLevel("T2");
  ActionId direct = w.ts.Call(t2, w.page, Invocation("write"));
  Stamp(&w.ts, direct);
  MultiLayerResult result = MultiLayerChecker::Check(w.ts);
  EXPECT_FALSE(result.layered);
  EXPECT_NE(result.not_layered_reason.find("not layered"),
            std::string::npos);
}

TEST(MultiLayerTest, SameObjectCallCycleNotLayered) {
  // The B-link rearrange situation: handled by the Def 5 extension in
  // the oo framework, unrepresentable in the layer model.
  TransactionSystem ts;
  ObjectId node = ts.AddObject(LeafType(), "Node");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, node, Ins("k"));
  ts.Call(a, node, Invocation("rearrange"));
  MultiLayerResult result = MultiLayerChecker::Check(ts);
  EXPECT_FALSE(result.layered);
  EXPECT_NE(result.not_layered_reason.find("Def 5"), std::string::npos);
  // ... while the oo validator handles it fine.
  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable);
}

TEST(MultiLayerTest, LevelCycleRejected) {
  // Two transactions write two pages (under commuting leaf keys but
  // conflicting page ops) in opposite orders through the SAME leaf:
  // leaf-level operations conflict on key, producing a level-1 cycle.
  LayeredWorld w;
  ObjectId page2 = w.ts.AddObject(PageType(), "Page2");
  auto leg = [&](ActionId top, ObjectId pg, const std::string& key) {
    ActionId t = w.ts.Call(top, w.tree, Ins(key));
    ActionId l = w.ts.Call(t, w.leaf, Ins(key));
    return w.ts.Call(l, pg, Invocation("write"));
  };
  ActionId t1 = w.ts.BeginTopLevel("T1");
  ActionId t2 = w.ts.BeginTopLevel("T2");
  ActionId w1a = leg(t1, w.page, "x");
  ActionId w2a = leg(t2, w.page, "x");
  ActionId w2b = leg(t2, page2, "y");
  ActionId w1b = leg(t1, page2, "y");
  Stamp(&w.ts, w1a);  // T1 before T2 on x
  Stamp(&w.ts, w2a);
  Stamp(&w.ts, w2b);  // T2 before T1 on y
  Stamp(&w.ts, w1b);

  MultiLayerResult result = MultiLayerChecker::Check(w.ts);
  ASSERT_TRUE(result.layered) << result.not_layered_reason;
  EXPECT_FALSE(result.serializable);
  // The conflicting keys propagate the cycle up to the top level.
  ValidationReport report = Validator::Validate(&w.ts);
  EXPECT_FALSE(report.oo_serializable);
}

class MultiLayerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiLayerProperty, MultiLayerImpliesOoAndMatchesGlobalOo) {
  // The paper's inclusion claim, plus the sharper observation that on
  // layered systems multi-layer serializability coincides with
  // oo-serializability strengthened by the global acyclicity check.
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.num_txns = 4;
  config.ops_per_txn = 3;
  config.num_leaves = 2;
  config.keys_per_leaf = 4;  // enough conflicts to exercise rejections
  RandomHistory h = GenerateRandomHistory(config);

  MultiLayerResult ml = MultiLayerChecker::Check(*h.ts);
  ASSERT_TRUE(ml.layered) << ml.not_layered_reason;

  ValidationOptions opts;
  opts.check_global = true;
  ValidationReport report = Validator::Validate(h.ts.get(), opts);

  if (ml.serializable) {
    EXPECT_TRUE(report.oo_serializable)
        << "seed " << GetParam() << ": multi-layer accepted, oo rejected";
  }
  bool oo_global = report.oo_serializable && report.globally_acyclic;
  EXPECT_EQ(ml.serializable, oo_global)
      << "seed " << GetParam()
      << ": multi-layer=" << ml.serializable << " oo+global=" << oo_global;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiLayerProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{50}));

}  // namespace
}  // namespace oodb
