// Tests for the semantic ADTs: escrow accounts, FIFO queue, directory.

#include <gtest/gtest.h>

#include <thread>

#include "containers/directory.h"
#include "containers/escrow.h"
#include "containers/fifo_queue.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

// ---------------------------------------------------------------------
// Escrow accounts
// ---------------------------------------------------------------------

TEST(EscrowTest, TypeVariantsDeclareDifferentSemantics) {
  Invocation dep("deposit", {Value(5)});
  Invocation wit("withdraw", {Value(5)});
  Invocation bal("balance");
  EXPECT_TRUE(EscrowAccountType()->Commutes(dep, wit));
  EXPECT_TRUE(EscrowAccountType()->Commutes(wit, wit));
  EXPECT_FALSE(EscrowAccountType()->Commutes(bal, dep));

  EXPECT_TRUE(NameOnlyAccountType()->Commutes(dep, dep));
  EXPECT_FALSE(NameOnlyAccountType()->Commutes(dep, wit));
  EXPECT_FALSE(NameOnlyAccountType()->Commutes(wit, wit));

  EXPECT_FALSE(RWAccountType()->Commutes(dep, dep));
  EXPECT_TRUE(RWAccountType()->Commutes(bal, bal));
}

TEST(EscrowTest, DepositWithdrawBalance) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 100);
  Value out;
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(acct, Invocation("deposit", {Value(50)})));
                  OODB_RETURN_IF_ERROR(
                      txn.Call(acct, Invocation("withdraw", {Value(30)})));
                  return txn.Call(acct, Invocation("balance"), &out);
                }).ok());
  EXPECT_EQ(out.AsInt(), 120);
}

TEST(EscrowTest, MinBalanceEnforced) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 100,
                                /*min_balance=*/50);
  Status st = db.RunTransaction("T", [&](MethodContext& txn) {
    return txn.Call(acct, Invocation("withdraw", {Value(60)}));
  });
  EXPECT_TRUE(st.IsConflict());
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance, 100);
}

TEST(EscrowTest, NegativeAmountRejected) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 100);
  Status st = db.RunTransaction("T", [&](MethodContext& txn) {
    return txn.Call(acct, Invocation("deposit", {Value(int64_t{-5})}));
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(EscrowTest, ConcurrentWithdrawalsNeverOverdraw) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 100);
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        Status st = db.RunTransaction("W", [&](MethodContext& txn) {
          return txn.Call(acct, Invocation("withdraw", {Value(10)}));
        });
        if (st.ok()) succeeded.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), 10);  // exactly 100/10 succeed
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance, 0);
}

TEST(EscrowTest, HistoryValidatesUnderEscrowSemantics) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        (void)db.RunTransaction("T", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(
              txn.Call(acct, Invocation("deposit", {Value(3)})));
          return txn.Call(acct, Invocation("withdraw", {Value(2)}));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance, 1040);
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

// ---------------------------------------------------------------------
// FIFO queue
// ---------------------------------------------------------------------

TEST(QueueTest, EnqDeqFifoOrder) {
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(q, Invocation("enq", {Value("a")})));
                  return txn.Call(q, Invocation("enq", {Value("b")}));
                }).ok());
  Value out;
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(q, Invocation("deq"), &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "a");
}

TEST(QueueTest, DeqEmptyIsNone) {
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  Value out("x");
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(q, Invocation("deq"), &out);
                }).ok());
  EXPECT_TRUE(out.IsNone());
}

TEST(QueueTest, AbortedEnqCancelled) {
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  (void)db.RunTransaction("T", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(q, Invocation("enq", {Value("x")})));
    return Status::Aborted("no");
  });
  EXPECT_TRUE(db.StateOf<QueueState>(q)->items.empty());
}

TEST(QueueTest, AbortedDeqRestoredToFront) {
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(q, Invocation("enq", {Value("a")})));
                  return txn.Call(q, Invocation("enq", {Value("b")}));
                }).ok());
  (void)db.RunTransaction("T", [&](MethodContext& txn) {
    Value out;
    OODB_RETURN_IF_ERROR(txn.Call(q, Invocation("deq"), &out));
    EXPECT_EQ(out.AsString(), "a");
    return Status::Aborted("no");
  });
  auto* state = db.StateOf<QueueState>(q);
  ASSERT_EQ(state->items.size(), 2u);
  EXPECT_EQ(state->items.front(), "a");
}

TEST(QueueTest, ConcurrentEnqueuersCommute) {
  Database db;
  RegisterQueueMethods(&db);
  ObjectId q = CreateQueue(&db, "Q");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        (void)db.RunTransaction("E", [&](MethodContext& txn) {
          return txn.Call(
              q, Invocation("enq", {Value("v" + std::to_string(t))}));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.StateOf<QueueState>(q)->items.size(), 100u);
  EXPECT_EQ(db.counters().deadlocks.load(), 0u);
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

TEST(DirectoryTest, InsertLookupRemoveUpdate) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Value out;
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(txn.Call(
                      dir, Invocation("insert", {Value("k"), Value("1")}),
                      &out));
                  return Status::OK();
                }).ok());
  EXPECT_EQ(out.AsInt(), 1);  // new key

  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("update", {Value("k"), Value("2")}),
                      &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "1");  // old value

  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(dir, Invocation("lookup", {Value("k")}),
                                  &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "2");

  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(dir, Invocation("remove", {Value("k")}),
                                  &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "2");
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(dir, Invocation("lookup", {Value("k")}),
                                  &out);
                }).ok());
  EXPECT_TRUE(out.IsNone());
}

TEST(DirectoryTest, KeyedCommutativityDeclared) {
  Invocation ia("insert", {Value("a"), Value("1")});
  Invocation ib("insert", {Value("b"), Value("1")});
  Invocation la("lookup", {Value("a")});
  EXPECT_TRUE(DirectoryType()->Commutes(ia, ib));
  EXPECT_FALSE(DirectoryType()->Commutes(ia, ia));
  EXPECT_FALSE(DirectoryType()->Commutes(ia, la));
  EXPECT_TRUE(DirectoryType()->Commutes(ib, la));
}

TEST(DirectoryTest, ConcurrentDistinctKeysNoWaits) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        std::string key = "t" + std::to_string(t) + "_" + std::to_string(i);
        (void)db.RunTransaction("I", [&](MethodContext& txn) {
          return txn.Call(dir,
                          Invocation("insert", {Value(key), Value("v")}));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.size(), 100u);
  EXPECT_EQ(db.counters().committed.load(), 100u);
}

}  // namespace
}  // namespace oodb
