// Range scans and phantom protection on the B+ tree.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <thread>

#include "containers/bptree.h"
#include "containers/codec.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

class BpTreeScanTest : public ::testing::Test {
 protected:
  void Build(size_t leaf_capacity = 4, size_t fanout = 4) {
    DatabaseOptions opts;
    opts.lock_options.wait_timeout = std::chrono::milliseconds(3000);
    db_ = std::make_unique<Database>(opts);
    RegisterPageMethods(db_.get());
    BpTree::RegisterMethods(db_.get());
    tree_ = BpTree::Create(db_.get(), "T", leaf_capacity, fanout);
  }

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i);
    return buf;
  }

  void Load(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(db_->RunTransaction("load", [&](MethodContext& txn) {
                      return txn.Call(tree_, BpTree::Insert(Key(i), Key(i)));
                    }).ok());
    }
  }

  std::vector<std::string> Scan(const std::string& lo,
                                const std::string& hi) {
    Value out;
    Status st = db_->RunTransaction("scan", [&](MethodContext& txn) {
      return txn.Call(tree_, BpTree::Scan(lo, hi), &out);
    });
    EXPECT_TRUE(st.ok()) << st;
    return SplitFields(out.AsString());
  }

  std::unique_ptr<Database> db_;
  ObjectId tree_;
};

TEST_F(BpTreeScanTest, EmptyTreeScanEmpty) {
  Build();
  EXPECT_TRUE(Scan("a", "z").empty());
}

TEST_F(BpTreeScanTest, FullRangeReturnsEverythingInOrder) {
  Build();
  Load(30);
  auto fields = Scan(Key(0), Key(29));
  ASSERT_EQ(fields.size(), 60u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(fields[2 * i], Key(i));
    EXPECT_EQ(fields[2 * i + 1], Key(i));
  }
}

TEST_F(BpTreeScanTest, SubrangeBoundsInclusive) {
  Build();
  Load(30);
  auto fields = Scan(Key(10), Key(19));
  ASSERT_EQ(fields.size(), 20u);
  EXPECT_EQ(fields[0], Key(10));
  EXPECT_EQ(fields[18], Key(19));
}

TEST_F(BpTreeScanTest, RangeOutsideKeysEmpty) {
  Build();
  Load(10);
  EXPECT_TRUE(Scan("z0", "z9").empty());
}

TEST_F(BpTreeScanTest, ScanCrossesLeafBoundaries) {
  Build(/*leaf_capacity=*/3, /*fanout=*/3);  // many tiny leaves
  Load(40);
  auto fields = Scan(Key(5), Key(35));
  ASSERT_EQ(fields.size(), 62u);
  EXPECT_EQ(fields[0], Key(5));
  EXPECT_EQ(fields[60], Key(35));
}

TEST_F(BpTreeScanTest, ScanAfterErase) {
  Build();
  Load(10);
  ASSERT_TRUE(db_->RunTransaction("del", [&](MethodContext& txn) {
                  return txn.Call(tree_, BpTree::Erase(Key(5)));
                }).ok());
  auto fields = Scan(Key(0), Key(9));
  ASSERT_EQ(fields.size(), 18u);
  for (const std::string& f : fields) EXPECT_NE(f, Key(5));
}

TEST_F(BpTreeScanTest, ScanCommutativityDeclared) {
  Invocation scan("scan", {Value("k010"), Value("k020")});
  Invocation in("insert", {Value("k015"), Value("v")});
  Invocation out("insert", {Value("k030"), Value("v")});
  Invocation search_in("search", {Value("k015")});
  EXPECT_FALSE(BpTreeObjectType()->Commutes(scan, in));
  EXPECT_TRUE(BpTreeObjectType()->Commutes(scan, out));
  EXPECT_TRUE(BpTreeObjectType()->Commutes(scan, search_in));
  EXPECT_TRUE(BpTreeObjectType()->Commutes(scan, scan));
  // Symmetric direction.
  EXPECT_FALSE(BpTreeObjectType()->Commutes(in, scan));
  EXPECT_TRUE(BpTreeObjectType()->Commutes(out, scan));
}

TEST_F(BpTreeScanTest, PhantomInsertBlocksUntilScannerCommits) {
  Build(/*leaf_capacity=*/8, /*fanout=*/8);
  Load(20);

  std::mutex m;
  std::condition_variable cv;
  bool scan_done = false;
  bool scanner_may_commit = false;
  std::atomic<bool> insert_committed{false};

  // Scanner: scans [k005, k015], then holds its locks until released.
  std::thread scanner([&] {
    Status st = db_->RunTransaction("scan", [&](MethodContext& txn) {
      Value out;
      OODB_RETURN_IF_ERROR(
          txn.Call(tree_, BpTree::Scan(Key(5), Key(15)), &out));
      {
        std::lock_guard<std::mutex> lock(m);
        scan_done = true;
      }
      cv.notify_all();
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return scanner_may_commit; });
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
  });

  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return scan_done; });
  }

  // In-range insert: must block on the scan's predicate lock.
  std::thread inserter([&] {
    Status st = db_->RunTransaction("ins", [&](MethodContext& txn) {
      return txn.Call(tree_, BpTree::Insert("k010x", "phantom"));
    });
    EXPECT_TRUE(st.ok()) << st;
    insert_committed = true;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(insert_committed.load())
      << "in-range insert must wait for the scanner";

  // Out-of-range insert: sails through while the scanner still holds.
  ASSERT_TRUE(db_->RunTransaction("ins2", [&](MethodContext& txn) {
                  return txn.Call(tree_, BpTree::Insert("k030x", "fine"));
                }).ok());

  {
    std::lock_guard<std::mutex> lock(m);
    scanner_may_commit = true;
  }
  cv.notify_all();
  scanner.join();
  inserter.join();
  EXPECT_TRUE(insert_committed.load());

  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST_F(BpTreeScanTest, ConcurrentScannersDoNotBlock) {
  Build();
  Load(20);
  std::atomic<uint64_t> waits_before{db_->locks().wait_count()};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 4; ++t) {
    scanners.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        Value out;
        (void)db_->RunTransaction("scan", [&](MethodContext& txn) {
          return txn.Call(tree_, BpTree::Scan(Key(0), Key(19)), &out);
        });
      }
    });
  }
  for (auto& t : scanners) t.join();
  EXPECT_EQ(db_->locks().wait_count(), waits_before.load());
}

}  // namespace
}  // namespace oodb
