#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/thread_pool.h"

namespace oodb {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.Value(), -5);
}

TEST(HistogramMetricTest, SnapshotStatistics) {
  HistogramMetric h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 1000u);
  EXPECT_EQ(snap.min(), 1u);
  EXPECT_EQ(snap.max(), 1000u);
  EXPECT_NEAR(snap.Mean(), 500.5, 0.001);
  // Log-bucketed quantiles: within one octave sub-bucket of the truth.
  EXPECT_GE(snap.Quantile(0.5), 400u);
  EXPECT_LE(snap.Quantile(0.5), 640u);
  EXPECT_GE(snap.Quantile(0.99), 900u);
}

TEST(HistogramMetricTest, MatchesUtilHistogramLayout) {
  // Both histogram types share hist_layout, so identical inputs produce
  // identical quantiles.
  HistogramMetric metric;
  Histogram plain;
  for (uint64_t v : {3u, 17u, 129u, 4096u, 70000u, 70000u, 1u << 20}) {
    metric.Observe(v);
    plain.Add(v);
  }
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(metric.Snapshot().Quantile(q), plain.Quantile(q)) << q;
  }
}

TEST(MetricsRegistryTest, LazyCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(registry.GetCounter("x.count")->Value(), 5u);
  EXPECT_NE(static_cast<void*>(registry.GetGauge("x.count")),
            static_cast<void*>(a));  // separate namespaces per kind
}

TEST(MetricsRegistryTest, TextSnapshotSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Increment(3);
  registry.GetCounter("a.first")->Increment(1);
  registry.SetGauge("m.middle", -7);
  registry.GetHistogram("h.lat")->Observe(100);
  std::string text = registry.TextSnapshot();
  size_t a = text.find("a.first");
  size_t z = text.find("z.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(text.find("m.middle -7"), std::string::npos);
  EXPECT_NE(text.find("h.lat"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonSnapshotShape) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Increment(11);
  registry.SetGauge("g.two", 22);
  registry.GetHistogram("h.three")->Observe(33);
  std::string json = registry.JsonSnapshot();
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"c.one\": 11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.two\": 22"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.three\": {\"count\": 1"), std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, JsonSnapshotDeterministic) {
  auto build = [] {
    MetricsRegistry registry;
    registry.GetCounter("b")->Increment(2);
    registry.GetCounter("a")->Increment(1);
    registry.SetGauge("g", 3);
    registry.GetHistogram("h")->Observe(5);
    return registry.JsonSnapshot();
  };
  EXPECT_EQ(build(), build());
}

// The TSan target: many thread-pool workers hammering one registry —
// lazy creation races, counter/gauge/histogram writes, and concurrent
// snapshot reads all at once.
TEST(MetricsRegistryTest, ConcurrentHammerFromThreadPool) {
  MetricsRegistry registry;
  constexpr int kWorkers = 8;
  constexpr int kPerWorker = 5000;
  ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&registry, w] {
      // Every worker creates-or-gets the same names: first-use races.
      Counter* hits = registry.GetCounter("hammer.hits");
      HistogramMetric* lat = registry.GetHistogram("hammer.lat");
      Gauge* last = registry.GetGauge("hammer.last");
      for (int i = 0; i < kPerWorker; ++i) {
        hits->Increment();
        lat->Observe(uint64_t(w * kPerWorker + i));
        last->Set(i);
        if (i % 1000 == 0) {
          // Concurrent export must be memory-safe mid-traffic.
          (void)registry.TextSnapshot();
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("hammer.hits")->Value(),
            uint64_t(kWorkers) * kPerWorker);
  HistogramSnapshot snap = registry.GetHistogram("hammer.lat")->Snapshot();
  EXPECT_EQ(snap.count(), uint64_t(kWorkers) * kPerWorker);
  EXPECT_EQ(snap.min(), 0u);
  EXPECT_EQ(snap.max(), uint64_t(kWorkers) * kPerWorker - 1);
}

}  // namespace
}  // namespace oodb
