#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apps/bank.h"
#include "apps/document.h"
#include "containers/codec.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

// ---------------------------------------------------------------------
// Document
// ---------------------------------------------------------------------

class DocumentTest : public ::testing::Test {
 protected:
  void Build(SchedulerKind scheduler = SchedulerKind::kOpenNested) {
    DatabaseOptions opts;
    opts.scheduler = scheduler;
    opts.lock_options.wait_timeout = std::chrono::milliseconds(500);
    db_ = std::make_unique<Database>(opts);
    Document::RegisterMethods(db_.get());
    doc_ = Document::Create(db_.get(), "Paper", /*sections=*/4);
  }

  std::unique_ptr<Database> db_;
  ObjectId doc_;
};

TEST_F(DocumentTest, EditAndRead) {
  Build();
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_,
                                  Document::EditSection(1, "Introduction"));
                }).ok());
  Value out;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_, Document::ReadSection(1), &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "Introduction");
}

TEST_F(DocumentTest, ReadAllConcatenatesSections) {
  Build();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                    return txn.Call(
                        doc_, Document::EditSection(i,
                                                    "s" + std::to_string(i)));
                  }).ok());
  }
  Value out;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_, Document::ReadAll(), &out);
                }).ok());
  auto fields = SplitFields(out.AsString());
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "s0");
  EXPECT_EQ(fields[3], "s3");
}

TEST_F(DocumentTest, InvalidSectionRejected) {
  Build();
  Status st = db_->RunTransaction("T", [&](MethodContext& txn) {
    return txn.Call(doc_, Document::EditSection(99, "x"));
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(DocumentTest, EditAbortRestoresOldText) {
  Build();
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_, Document::EditSection(0, "v1"));
                }).ok());
  (void)db_->RunTransaction("T", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(doc_, Document::EditSection(0, "v2")));
    return Status::Aborted("rollback");
  });
  Value out;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_, Document::ReadSection(0), &out);
                }).ok());
  EXPECT_EQ(out.AsString(), "v1");
}

TEST_F(DocumentTest, CoopEditingConcurrentSectionsSucceed) {
  // The paper's motivation: authors in different sections never block
  // each other under open nested semantic locking.
  Build();
  std::vector<std::thread> authors;
  std::atomic<int> failures{0};
  for (int a = 0; a < 4; ++a) {
    authors.emplace_back([&, a] {
      for (int i = 0; i < 20; ++i) {
        Status st = db_->RunTransaction("edit", [&](MethodContext& txn) {
          return txn.Call(doc_, Document::EditSection(
                                    a, "author" + std::to_string(a) +
                                           " rev" + std::to_string(i)));
        });
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : authors) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(db_->locks().wait_count(), 0u);  // disjoint sections: no waits
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST_F(DocumentTest, SameSectionConflictsSerialize) {
  Build();
  std::vector<std::thread> authors;
  for (int a = 0; a < 3; ++a) {
    authors.emplace_back([&, a] {
      for (int i = 0; i < 10; ++i) {
        (void)db_->RunTransaction("edit", [&](MethodContext& txn) {
          return txn.Call(doc_,
                          Document::EditSection(0, "a" + std::to_string(a)));
        });
      }
    });
  }
  for (auto& t : authors) t.join();
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  // The final text is one of the last writes.
  Value out;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(doc_, Document::ReadSection(0), &out);
                }).ok());
  EXPECT_FALSE(out.AsString().empty());
}

// ---------------------------------------------------------------------
// Bank
// ---------------------------------------------------------------------

class BankTest : public ::testing::Test {
 protected:
  void Build(BankSemantics semantics) {
    db_ = std::make_unique<Database>();
    Bank::RegisterMethods(db_.get(), semantics);
    bank_ = Bank::Create(db_.get(), "Bank", semantics, /*accounts=*/8,
                         /*initial_balance=*/1000);
  }

  int64_t Audit() {
    Value out;
    Status st = db_->RunTransaction("audit", [&](MethodContext& txn) {
      return txn.Call(bank_, Bank::Audit(), &out);
    });
    EXPECT_TRUE(st.ok()) << st;
    return out.AsInt();
  }

  std::unique_ptr<Database> db_;
  ObjectId bank_;
};

TEST_F(BankTest, TransferMovesMoney) {
  Build(BankSemantics::kEscrow);
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(bank_, Bank::Transfer(0, 1, 300));
                }).ok());
  Value w0, b0;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(
                      txn.Call(bank_, Invocation("withdraw",
                                                 {Value(0), Value(0)}), &w0));
                  return txn.Call(bank_, Invocation("balance", {Value(0)}),
                                  &b0);
                }).ok());
  // Withdraw returns the amount — not the balance, which would leak the
  // order of concurrent escrow operations (inference pass 6 catches
  // that as an unsound deposit/withdraw commute declaration).
  EXPECT_EQ(w0.AsInt(), 0);
  EXPECT_EQ(b0.AsInt(), 700);
  EXPECT_EQ(Audit(), 8000);
}

TEST_F(BankTest, OverdraftAbortsWholeTransfer) {
  Build(BankSemantics::kEscrow);
  Status st = db_->RunTransaction("T", [&](MethodContext& txn) {
    return txn.Call(bank_, Bank::Transfer(0, 1, 5000));
  });
  EXPECT_TRUE(st.IsConflict());
  EXPECT_EQ(Audit(), 8000);
}

TEST_F(BankTest, ConcurrentTransfersPreserveTotal) {
  Build(BankSemantics::kEscrow);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        int from = (t + i) % 8;
        int to = (t + i + 3) % 8;
        (void)db_->RunTransaction("xfer", [&](MethodContext& txn) {
          return txn.Call(bank_, Bank::Transfer(from, to, 10));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Audit(), 8000);
  EXPECT_EQ(db_->locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST_F(BankTest, AbortedTransferCompensated) {
  Build(BankSemantics::kEscrow);
  (void)db_->RunTransaction("T", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(bank_, Bank::Transfer(0, 1, 100)));
    return Status::Aborted("rollback");
  });
  EXPECT_EQ(Audit(), 8000);
  Value b;
  ASSERT_TRUE(db_->RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(bank_, Invocation("balance", {Value(0)}),
                                  &b);
                }).ok());
  EXPECT_EQ(b.AsInt(), 1000);
}

TEST_F(BankTest, NameOnlySemanticsStillCorrectJustSlower) {
  Build(BankSemantics::kNameOnly);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10; ++i) {
        (void)db_->RunTransaction("xfer", [&](MethodContext& txn) {
          return txn.Call(bank_, Bank::Transfer(t % 8, (t + 1) % 8, 5));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(Audit(), 8000);
}

}  // namespace
}  // namespace oodb
