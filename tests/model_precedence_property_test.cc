// Randomized properties of the Def 7 precedence relation (MustPrecede):
// irreflexive, antisymmetric, transitive over sequential chains, and
// consistent with the runtime's actual execution order.

#include <gtest/gtest.h>

#include <vector>

#include "model/transaction_system.h"
#include "util/random.h"
#include "paper_types.h"

namespace oodb {
namespace {

using testing::LeafType;
using testing::PageType;

struct RandomTree {
  TransactionSystem ts;
  std::vector<ActionId> actions;
};

void BuildRandomTree(RandomTree* out, uint64_t seed) {
  Rng rng(seed);
  ObjectId leaf = out->ts.AddObject(LeafType(), "L");
  ObjectId page = out->ts.AddObject(PageType(), "P");
  ActionId top = out->ts.BeginTopLevel("T");
  out->actions.push_back(top);
  size_t n = 5 + rng.NextBelow(15);
  for (size_t i = 0; i < n; ++i) {
    ActionId parent =
        out->actions[rng.NextBelow(out->actions.size())];
    ObjectId obj = rng.NextBool(0.5) ? leaf : page;
    // 70% sequential (chained precedence), 30% parallel siblings.
    out->actions.push_back(out->ts.Call(
        parent, obj,
        Invocation("insert", {Value("k" + std::to_string(i))}),
        /*sequential=*/rng.NextBool(0.7)));
  }
}

class PrecedenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrecedenceProperty, IrreflexiveAndAntisymmetric) {
  RandomTree t;
  BuildRandomTree(&t, GetParam());
  for (ActionId a : t.actions) {
    EXPECT_FALSE(t.ts.MustPrecede(a, a)) << t.ts.Describe(a);
    for (ActionId b : t.actions) {
      if (a == b) continue;
      EXPECT_FALSE(t.ts.MustPrecede(a, b) && t.ts.MustPrecede(b, a))
          << t.ts.Describe(a) << " <> " << t.ts.Describe(b);
    }
  }
}

TEST_P(PrecedenceProperty, AncestorsNeverOrderedAgainstDescendants) {
  RandomTree t;
  BuildRandomTree(&t, GetParam());
  for (ActionId a : t.actions) {
    for (ActionId b : t.actions) {
      if (a == b) continue;
      if (t.ts.CallsTransitively(a, b)) {
        EXPECT_FALSE(t.ts.MustPrecede(a, b));
        EXPECT_FALSE(t.ts.MustPrecede(b, a));
      }
    }
  }
}

TEST_P(PrecedenceProperty, TransitiveOverSiblingChains) {
  // Within one action set, sequential children form a chain: each
  // earlier sequential sibling precedes every later one reachable over
  // the chain; MustPrecede must agree with reachability over the
  // explicit edges.
  RandomTree t;
  BuildRandomTree(&t, GetParam());
  for (ActionId parent : t.actions) {
    const auto& rec = t.ts.action(parent);
    const auto& edges = rec.child_precedence;
    // Brute-force reachability over the action set's edges.
    for (ActionId x : rec.children) {
      for (ActionId y : rec.children) {
        if (x == y) continue;
        // BFS over edges.
        std::vector<ActionId> frontier{x};
        bool reachable = false;
        std::vector<uint64_t> seen{x.value};
        while (!frontier.empty() && !reachable) {
          ActionId cur = frontier.back();
          frontier.pop_back();
          for (const auto& [from, to] : edges) {
            if (!(from == cur)) continue;
            if (to == y) {
              reachable = true;
              break;
            }
            if (std::find(seen.begin(), seen.end(), to.value) ==
                seen.end()) {
              seen.push_back(to.value);
              frontier.push_back(to);
            }
          }
        }
        EXPECT_EQ(t.ts.MustPrecede(x, y), reachable)
            << t.ts.Describe(x) << " -> " << t.ts.Describe(y);
      }
    }
  }
}

TEST_P(PrecedenceProperty, InheritedToDescendantsOfOrderedSiblings) {
  RandomTree t;
  BuildRandomTree(&t, GetParam());
  for (ActionId a : t.actions) {
    for (ActionId b : t.actions) {
      if (a == b || !t.ts.MustPrecede(a, b)) continue;
      // Every descendant pair inherits the order.
      for (ActionId da : t.actions) {
        if (!(da == a) && !t.ts.CallsTransitively(a, da)) continue;
        for (ActionId db : t.actions) {
          if (!(db == b) && !t.ts.CallsTransitively(b, db)) continue;
          EXPECT_TRUE(t.ts.MustPrecede(da, db))
              << t.ts.Describe(da) << " should precede "
              << t.ts.Describe(db);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecedenceProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

}  // namespace
}  // namespace oodb
