#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace oodb {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.Mean(), 100.0);
}

TEST(HistogramTest, MinMaxMeanExact) {
  Histogram h;
  for (uint64_t v : {10, 20, 30, 40, 50}) h.Add(v);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 50u);
  EXPECT_EQ(h.Mean(), 30.0);
}

TEST(HistogramTest, QuantilesApproximatelyOrdered) {
  Histogram h;
  for (uint64_t i = 1; i <= 10000; ++i) h.Add(i);
  uint64_t p50 = h.Quantile(0.5);
  uint64_t p95 = h.Quantile(0.95);
  uint64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Log-bucketing gives ~25% relative error bounds.
  EXPECT_NEAR(double(p50), 5000.0, 1500.0);
  EXPECT_NEAR(double(p99), 9900.0, 2800.0);
}

TEST(HistogramTest, ZeroAndSmallValues) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  a.Add(20);
  b.Add(30);
  b.Add(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 40u);
  EXPECT_EQ(a.Mean(), 25.0);
}

TEST(HistogramTest, MergeWithEmpty) {
  Histogram a, b;
  a.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Add(uint64_t{1} << 40);
  h.Add(uint64_t{1} << 41);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), uint64_t{1} << 41);
  EXPECT_GE(h.Quantile(1.0), uint64_t{1} << 40);
}

TEST(HistogramTest, SummaryFormat) {
  Histogram h;
  h.Add(100);
  std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("mean=100.0"), std::string::npos);
}

TEST(HistLayoutTest, BucketForIsMonotonicAndInRange) {
  size_t prev = 0;
  for (uint64_t v = 0; v < 10000; ++v) {
    size_t b = hist_layout::BucketFor(v);
    EXPECT_LT(b, hist_layout::kBucketCount);
    EXPECT_GE(b, prev);
    prev = b;
  }
  EXPECT_LT(hist_layout::BucketFor(UINT64_MAX),
            hist_layout::kBucketCount);
}

TEST(HistogramTest, MergeOfSplitsEqualsWhole) {
  // The per-thread-histograms-then-Merge pattern the throughput driver
  // uses must agree exactly with one histogram fed every sample: same
  // count, mean, min, max, and every quantile (shared bucket layout).
  Rng rng(99);
  Histogram whole;
  Histogram parts[4];
  for (int i = 0; i < 40000; ++i) {
    uint64_t v = rng.NextBelow(1u << 20);
    whole.Add(v);
    parts[i % 4].Add(v);
  }
  Histogram merged;
  for (const Histogram& p : parts) merged.Merge(p);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
  EXPECT_DOUBLE_EQ(merged.Mean(), whole.Mean());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(merged.Summary(), whole.Summary());
}

TEST(HistogramTest, MergeIntoEmptyAndOfEmpty) {
  Histogram empty, filled, target;
  filled.Add(7);
  filled.Add(1000);
  target.Merge(filled);  // into empty
  target.Merge(empty);   // of empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 7u);
  EXPECT_EQ(target.max(), 1000u);
}

TEST(HistLayoutTest, ValueLiesWithinItsBucketBounds) {
  for (uint64_t v : {0ull, 1ull, 7ull, 255ull, 4096ull, 1ull << 33,
                     (1ull << 40) + 12345ull}) {
    size_t b = hist_layout::BucketFor(v);
    EXPECT_LE(v, hist_layout::BucketUpperBound(b)) << v;
    if (b > 0) {
      // The previous bucket's bound is this bucket's inclusive floor.
      EXPECT_GE(v, hist_layout::BucketUpperBound(b - 1)) << v;
    }
  }
}

}  // namespace
}  // namespace oodb
