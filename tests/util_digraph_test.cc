#include "util/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace oodb {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.NodeCount(), 0u);
  EXPECT_EQ(g.EdgeCount(), 0u);
  EXPECT_FALSE(g.HasCycle());
  auto topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.has_value());
  EXPECT_TRUE(topo->empty());
}

TEST(DigraphTest, AddEdgeCreatesNodes) {
  Digraph g;
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(DigraphTest, ParallelEdgesCollapse) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(DigraphTest, AcyclicChain) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.Reaches(1, 4));
  EXPECT_FALSE(g.Reaches(4, 1));
}

TEST(DigraphTest, TwoCycleDetected) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  EXPECT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_GE(cycle->size(), 3u);  // a, b, a
}

TEST(DigraphTest, SelfLoopIsCycle) {
  Digraph g;
  g.AddEdge(7, 7);
  EXPECT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), 7u);
  EXPECT_EQ(cycle->back(), 7u);
}

TEST(DigraphTest, LongerCycleFound) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 2);  // cycle 2-3-4-2
  ASSERT_TRUE(g.HasCycle());
  auto cycle = *g.FindCycle();
  EXPECT_EQ(cycle.front(), cycle.back());
  // The cycle must not contain node 1.
  EXPECT_EQ(std::count(cycle.begin(), cycle.end(), 1u), 0);
}

TEST(DigraphTest, TopologicalOrderRespectsEdges) {
  Digraph g;
  g.AddEdge(3, 1);
  g.AddEdge(3, 2);
  g.AddEdge(1, 4);
  g.AddEdge(2, 4);
  g.AddNode(9);  // isolated
  auto topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->size(), 5u);
  auto pos = [&](Digraph::NodeId n) {
    return std::find(topo->begin(), topo->end(), n) - topo->begin();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(3), pos(2));
  EXPECT_LT(pos(1), pos(4));
  EXPECT_LT(pos(2), pos(4));
}

TEST(DigraphTest, TopologicalOrderFailsOnCycle) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  EXPECT_FALSE(g.TopologicalOrder().has_value());
}

TEST(DigraphTest, ReachableFromExcludesSelfWithoutLoop) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  auto r = g.ReachableFrom(1);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.count(2));
  EXPECT_TRUE(r.count(3));
  EXPECT_FALSE(r.count(1));
}

TEST(DigraphTest, ReachableFromIncludesSelfOnCycle) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  auto r = g.ReachableFrom(1);
  EXPECT_TRUE(r.count(1));
}

TEST(DigraphTest, TransitiveClosure) {
  Digraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  Digraph c = g.TransitiveClosure();
  EXPECT_TRUE(c.HasEdge(1, 3));
  EXPECT_TRUE(c.HasEdge(1, 2));
  EXPECT_TRUE(c.HasEdge(2, 3));
  EXPECT_FALSE(c.HasEdge(3, 1));
}

TEST(DigraphTest, UnionWith) {
  Digraph a, b;
  a.AddEdge(1, 2);
  b.AddEdge(2, 3);
  b.AddNode(5);
  a.UnionWith(b);
  EXPECT_TRUE(a.HasEdge(1, 2));
  EXPECT_TRUE(a.HasEdge(2, 3));
  EXPECT_TRUE(a.HasNode(5));
  EXPECT_EQ(a.EdgeCount(), 2u);
}

TEST(DigraphTest, StronglyConnectedComponents) {
  Digraph g;
  // SCC {1,2,3}, SCC {4}, SCC {5,6}.
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 1);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  g.AddEdge(5, 6);
  g.AddEdge(6, 5);
  auto sccs = g.StronglyConnectedComponents();
  ASSERT_EQ(sccs.size(), 3u);
  size_t sizes[3];
  for (size_t i = 0; i < 3; ++i) sizes[i] = sccs[i].size();
  std::sort(sizes, sizes + 3);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 3u);
}

TEST(DigraphTest, ToStringDeterministic) {
  Digraph g;
  g.AddEdge(1, 3);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.ToString(), "1->2, 1->3");
}

TEST(DigraphTest, ToStringWithFormatter) {
  Digraph g;
  g.AddEdge(1, 2);
  auto fmt = [](Digraph::NodeId n) { return "T" + std::to_string(n); };
  EXPECT_EQ(g.ToString(fmt), "T1->T2");
}

TEST(DigraphTest, AddEdgeReportsNovelty) {
  Digraph g;
  EXPECT_TRUE(g.AddEdge(1, 2));
  EXPECT_FALSE(g.AddEdge(1, 2));
  EXPECT_TRUE(g.AddEdge(2, 1));
  EXPECT_EQ(g.EdgeCount(), 2u);
}

TEST(DigraphTest, ReserveSuccessorsKeepsSemantics) {
  Digraph g;
  g.ReserveSuccessors(7, 100);
  EXPECT_TRUE(g.HasNode(7));
  EXPECT_TRUE(g.Successors(7).empty());
  for (Digraph::NodeId n = 0; n < 100; ++n) EXPECT_TRUE(g.AddEdge(7, n));
  EXPECT_EQ(g.Successors(7).size(), 100u);
  // Node order: the reserved node first, then targets as mentioned.
  EXPECT_EQ(g.Nodes().front(), 7u);
}

TEST(DigraphTest, SuccessorsIterateInInsertionOrder) {
  Digraph g;
  const Digraph::NodeId order[] = {9, 3, 27, 1};
  for (Digraph::NodeId n : order) g.AddEdge(0, n);
  std::vector<Digraph::NodeId> seen(g.Successors(0).begin(),
                                    g.Successors(0).end());
  EXPECT_EQ(seen, std::vector<Digraph::NodeId>(order, order + 4));
}

TEST(DigraphTest, HasCycleWithMatchesMaterializedUnion) {
  // Acyclic halves whose union is cyclic — the Def 16(ii) shape.
  Digraph base, extra;
  base.AddEdge(1, 2);
  base.AddEdge(2, 3);
  extra.AddEdge(3, 1);
  EXPECT_FALSE(base.HasCycle());
  EXPECT_FALSE(extra.HasCycle());
  EXPECT_TRUE(base.HasCycleWith(extra));
  EXPECT_TRUE(extra.HasCycleWith(base));

  Digraph disjoint;
  disjoint.AddEdge(10, 11);
  EXPECT_FALSE(base.HasCycleWith(disjoint));
  // A cycle entirely inside `extra` must also be found, even from
  // roots only `extra` knows.
  Digraph self;
  self.AddEdge(20, 21);
  self.AddEdge(21, 20);
  EXPECT_TRUE(base.HasCycleWith(self));
  Digraph empty;
  EXPECT_FALSE(empty.HasCycleWith(empty));
}

TEST(DigraphTest, LargeAcyclicStress) {
  Digraph g;
  constexpr int kN = 2000;
  for (int i = 0; i + 1 < kN; ++i) g.AddEdge(i, i + 1);
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.Reaches(0, kN - 1));
  auto topo = g.TopologicalOrder();
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->size(), size_t{kN});
}

TEST(DigraphTest, LargeCycleStress) {
  Digraph g;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) g.AddEdge(i, (i + 1) % kN);
  EXPECT_TRUE(g.HasCycle());
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), size_t{kN} + 1);
}

}  // namespace
}  // namespace oodb
