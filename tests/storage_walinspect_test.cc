// WAL inspector: golden-gated text/JSON/stats rendering, stats
// round-trip (totals equal the sum of decoded records), and the
// truncate-at-every-byte property — the inspector and recovery share
// one decoder, so they must agree on the valid prefix, the next LSN,
// and the torn byte count at *every* possible crash boundary.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "containers/directory.h"
#include "containers/persist.h"
#include "storage/recovery.h"
#include "storage/walinspect.h"

#ifndef OODB_GOLDEN_DIR
#error "OODB_GOLDEN_DIR must be defined for this test"
#endif

namespace oodb {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(OODB_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path
                         << " (run with OODB_REGEN_GOLDENS=1 to create)";
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

bool Regen() { return std::getenv("OODB_REGEN_GOLDENS") != nullptr; }

std::string TempPath(const char* tag) {
  std::string path = "/tmp/oodb_walinspect_test_" + std::string(tag) + "_" +
                     std::to_string(::getpid());
  std::filesystem::remove_all(path);
  return path;
}

/// Builds the deterministic fixture epoch: eight records covering all
/// five kinds (a committed txn, an aborted txn with a CLR), then nine
/// raw garbage bytes — a torn tail the frame header cannot satisfy
/// (short-payload). Encoding carries no timestamps or randomness, so
/// the bytes are identical on every run; the committed golden .wal is
/// this builder's output.
void BuildFixtureWal(const std::string& path) {
  Wal wal;
  ASSERT_TRUE(wal.Create(path, /*first_lsn=*/1).ok());

  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn = 1;
  begin.txn_name = "alpha";
  ASSERT_EQ(*wal.Append(begin), 1u);

  WalRecord op1;
  op1.type = WalRecordType::kOp;
  op1.txn = 1;
  op1.root = "D";
  op1.op = Invocation("insert", {Value("k1"), Value("v1")});
  op1.has_comp = true;
  op1.comp = Invocation("remove", {Value("k1")});
  ASSERT_EQ(*wal.Append(op1), 2u);

  WalRecord op2;  // no compensation registered
  op2.type = WalRecordType::kOp;
  op2.txn = 1;
  op2.root = "H";
  op2.op = Invocation("insert", {Value("k2"), Value("v2")});
  ASSERT_EQ(*wal.Append(op2), 3u);

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 1;
  ASSERT_EQ(*wal.Append(commit), 4u);

  WalRecord begin2;
  begin2.type = WalRecordType::kBegin;
  begin2.txn = 2;
  begin2.txn_name = "beta";
  ASSERT_EQ(*wal.Append(begin2), 5u);

  WalRecord op3;
  op3.type = WalRecordType::kOp;
  op3.txn = 2;
  op3.root = "D";
  op3.op = Invocation("remove", {Value("k9")});
  op3.has_comp = true;
  op3.comp = Invocation("insert", {Value("k9"), Value("old9")});
  ASSERT_EQ(*wal.Append(op3), 6u);

  WalRecord clr;
  clr.type = WalRecordType::kClr;
  clr.txn = 2;
  clr.root = "D";
  clr.comp = Invocation("insert", {Value("k9"), Value("old9")});
  clr.undoes_lsn = 6;
  ASSERT_EQ(*wal.Append(clr), 7u);

  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.txn = 2;
  ASSERT_EQ(*wal.Append(abort), 8u);
  ASSERT_TRUE(wal.Force().ok());
  wal.Close();

  std::ofstream tail(path, std::ios::binary | std::ios::app);
  ASSERT_TRUE(tail.good());
  tail << "torn-tail";  // 9 bytes: a frame header promising > file size
  ASSERT_TRUE(tail.good());
}

class WalInspectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    BuildFixtureWal(path_);
    ASSERT_TRUE(Wal::ScanDetailed(path_, &scan_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(path_); }

  std::string path_;
  WalScanResult scan_;
};

TEST_F(WalInspectTest, FixtureDecodesAsBuilt) {
  EXPECT_EQ(scan_.first_lsn, 1u);
  ASSERT_EQ(scan_.records.size(), 8u);
  EXPECT_EQ(scan_.next_lsn, 9u);
  EXPECT_EQ(scan_.torn, WalTornKind::kShortPayload);
  EXPECT_EQ(scan_.torn_bytes, 9u);
  EXPECT_EQ(scan_.torn_offset + scan_.torn_bytes, scan_.file_bytes);
  EXPECT_EQ(scan_.valid_bytes + 16 + scan_.torn_bytes, scan_.file_bytes);
  // Frames tile the record region exactly.
  uint64_t pos = 16;
  for (const WalScannedRecord& rec : scan_.records) {
    EXPECT_EQ(rec.offset, pos);
    pos += rec.frame_bytes;
  }
  EXPECT_EQ(pos, 16 + scan_.valid_bytes);
}

TEST_F(WalInspectTest, FixtureWalMatchesGolden) {
  const std::string built = ReadFileBytes(path_);
  const std::string golden = GoldenPath("walinspect_fixture.wal");
  if (Regen()) {
    WriteFileBytes(golden, built);
    GTEST_SKIP() << "regenerated " << golden;
  }
  EXPECT_EQ(built, ReadFileBytes(golden))
      << "fixture WAL bytes drifted; regen goldens if intentional";
}

TEST_F(WalInspectTest, RendersMatchGoldens) {
  const WalInspectOptions all;
  const struct {
    const char* golden;
    std::string rendered;
  } cases[] = {
      {"walinspect_fixture.txt", RenderWalText("fixture", scan_, all)},
      {"walinspect_fixture.json", RenderWalJson("fixture", scan_, all)},
      {"walinspect_fixture_stats.txt",
       RenderWalStats("fixture", scan_, all)},
  };
  if (Regen()) {
    for (const auto& c : cases) WriteFileBytes(GoldenPath(c.golden), c.rendered);
    GTEST_SKIP() << "regenerated walinspect render goldens";
  }
  for (const auto& c : cases) {
    EXPECT_EQ(c.rendered, ReadFileBytes(GoldenPath(c.golden))) << c.golden;
  }
}

TEST_F(WalInspectTest, RenderingIsDeterministic) {
  WalScanResult again;
  ASSERT_TRUE(Wal::ScanDetailed(path_, &again).ok());
  const WalInspectOptions all;
  EXPECT_EQ(RenderWalText("fixture", scan_, all),
            RenderWalText("fixture", again, all));
  EXPECT_EQ(RenderWalJson("fixture", scan_, all),
            RenderWalJson("fixture", again, all));
  EXPECT_EQ(RenderWalStats("fixture", scan_, all),
            RenderWalStats("fixture", again, all));
}

TEST_F(WalInspectTest, StatsTotalsEqualDecodedRecords) {
  const WalInspectStats stats = ComputeWalStats(scan_, WalInspectOptions{});
  EXPECT_EQ(stats.total.count, scan_.records.size());
  EXPECT_EQ(stats.total.bytes, scan_.valid_bytes);
  uint64_t count = 0, bytes = 0;
  for (const auto& row : stats.kinds) {
    count += row.count;
    bytes += row.bytes;
  }
  EXPECT_EQ(count, stats.total.count);
  EXPECT_EQ(bytes, stats.total.bytes);
  // Per-kind counts for the fixture: 2 begin, 3 op, 1 commit, 1 abort,
  // 1 clr (kinds[] is indexed by WalRecordType - 1).
  EXPECT_EQ(stats.kinds[0].count, 2u);
  EXPECT_EQ(stats.kinds[1].count, 3u);
  EXPECT_EQ(stats.kinds[2].count, 1u);
  EXPECT_EQ(stats.kinds[3].count, 1u);
  EXPECT_EQ(stats.kinds[4].count, 1u);
}

TEST_F(WalInspectTest, FiltersSelectExpectedRecords) {
  auto count = [&](const WalInspectOptions& options) {
    size_t n = 0;
    for (const auto& rec : scan_.records) {
      if (WalInspectMatch(rec.record, options)) ++n;
    }
    return n;
  };

  WalInspectOptions txn1;
  txn1.has_txn = true;
  txn1.txn = 1;
  EXPECT_EQ(count(txn1), 4u);

  WalInspectOptions object_h;
  object_h.object = "H";
  EXPECT_EQ(count(object_h), 1u);

  WalInspectOptions kind_op;
  kind_op.kind = "op";
  EXPECT_EQ(count(kind_op), 3u);

  WalInspectOptions window;
  window.from_lsn = 3;
  window.to_lsn = 6;
  EXPECT_EQ(count(window), 4u);

  // Filtered stats still tile: total equals the sum of matching frames.
  const WalInspectStats stats = ComputeWalStats(scan_, kind_op);
  EXPECT_EQ(stats.total.count, 3u);
  uint64_t bytes = 0;
  for (const auto& rec : scan_.records) {
    if (WalInspectMatch(rec.record, kind_op)) bytes += rec.frame_bytes;
  }
  EXPECT_EQ(stats.total.bytes, bytes);
}

// The core torn-tail property: truncate the fixture at every byte
// offset and the shared decoder must never crash, must classify every
// prefix, and the torn accounting must tile the file exactly.
TEST_F(WalInspectTest, TruncateAtEveryByteOffset) {
  const std::string bytes = ReadFileBytes(path_);
  const std::string trunc_path = path_ + ".trunc";
  size_t prev_records = 0;
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(trunc_path, bytes.substr(0, cut));
    WalScanResult scan;
    const Status st = Wal::ScanDetailed(trunc_path, &scan);
    if (cut < 16) {
      // Shorter than the epoch header: not a WAL file, loudly.
      EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << "cut=" << cut;
      continue;
    }
    ASSERT_TRUE(st.ok()) << "cut=" << cut << ": " << st.ToString();
    EXPECT_EQ(scan.file_bytes, cut) << "cut=" << cut;
    // valid prefix + torn tail tile the record region exactly.
    EXPECT_EQ(scan.valid_bytes + 16 + scan.torn_bytes, cut) << "cut=" << cut;
    if (scan.torn == WalTornKind::kNone) {
      EXPECT_EQ(scan.torn_bytes, 0u) << "cut=" << cut;
    } else {
      EXPECT_EQ(scan.torn_offset, 16 + scan.valid_bytes) << "cut=" << cut;
      EXPECT_GT(scan.torn_bytes, 0u) << "cut=" << cut;
    }
    // Records only ever accumulate as more bytes survive.
    EXPECT_GE(scan.records.size(), prev_records) << "cut=" << cut;
    prev_records = scan.records.size();
    // LSNs are dense from the header's first_lsn.
    EXPECT_EQ(scan.next_lsn, scan.first_lsn + scan.records.size())
        << "cut=" << cut;

    // The thin Scan() wrapper (what recovery historically consumed)
    // agrees with the detailed scan on every boundary.
    std::vector<WalRecord> records;
    uint64_t valid_bytes = 0, next_lsn = 0;
    ASSERT_TRUE(
        Wal::Scan(trunc_path, &records, &valid_bytes, &next_lsn).ok())
        << "cut=" << cut;
    EXPECT_EQ(records.size(), scan.records.size()) << "cut=" << cut;
    EXPECT_EQ(valid_bytes, scan.valid_bytes) << "cut=" << cut;
    EXPECT_EQ(next_lsn, scan.next_lsn) << "cut=" << cut;
  }
  std::filesystem::remove(trunc_path);
}

// End-to-end agreement: truncate a *real* store's epoch WAL at sampled
// offsets, inspect the pre-recovery bytes, then run full recovery on a
// copy — scanned record counts and torn byte counts must match, because
// both sides run Wal::ScanDetailed.
TEST(WalInspectRecoveryTest, InspectorAgreesWithRecovery) {
  const std::string base = TempPath("store");
  {
    Database db;
    StorageEngineOptions opts;
    opts.dir = base;
    StorageEngine engine(opts);
    RegisterDirectoryMethods(&db);
    ASSERT_TRUE(RegisterStandardSerdes(&engine).ok());
    ASSERT_TRUE(engine.Open(&db).ok());
    ASSERT_TRUE(
        engine.AttachRoot("D", "directory", CreateDirectory(&db, "D")).ok());
    ASSERT_TRUE(Recover(&engine, &db).ok());
    db.AttachDurability(&engine);
    ObjectId root = engine.RootId("D");
    for (int i = 0; i < 12; ++i) {
      const std::string k = "k" + std::to_string(i);
      ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                      return txn.Call(
                          root, Invocation("insert", {Value(k), Value(k)}));
                    }).ok());
    }
    // Exit without a checkpoint: the work lives only in the epoch WAL.
  }

  // Find the live epoch by scanning for the newest wal.<N> file.
  uint64_t epoch = 0;
  for (const auto& entry : std::filesystem::directory_iterator(base)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) {
      epoch = std::max(epoch, static_cast<uint64_t>(std::strtoull(
                                  name.c_str() + 4, nullptr, 10)));
    }
  }
  ASSERT_GT(epoch, 0u);
  const std::string wal_path = base + "/wal." + std::to_string(epoch);
  const std::string wal_bytes = ReadFileBytes(wal_path);
  ASSERT_GT(wal_bytes.size(), 32u);

  const size_t cuts[] = {16, 16 + 7, wal_bytes.size() / 3,
                         wal_bytes.size() / 2, wal_bytes.size() - 5,
                         wal_bytes.size()};
  int index = 0;
  for (size_t cut : cuts) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    const std::string copy =
        base + "_cut" + std::to_string(index++);
    std::filesystem::remove_all(copy);
    std::filesystem::copy(base, copy,
                          std::filesystem::copy_options::recursive);
    const std::string copy_wal =
        copy + "/wal." + std::to_string(epoch);
    WriteFileBytes(copy_wal, wal_bytes.substr(0, cut));

    // Inspect the pre-recovery bytes (recovery itself appends CLRs and
    // abort records to the same epoch, so inspect first).
    WalScanResult scan;
    ASSERT_TRUE(Wal::ScanDetailed(copy_wal, &scan).ok());

    Database db;
    StorageEngineOptions opts;
    opts.dir = copy;
    StorageEngine engine(opts);
    RegisterDirectoryMethods(&db);
    ASSERT_TRUE(RegisterStandardSerdes(&engine).ok());
    ASSERT_TRUE(engine.Open(&db).ok());
    RecoveryStats stats;
    ASSERT_TRUE(Recover(&engine, &db, &stats).ok());

    EXPECT_EQ(stats.scanned_records, scan.records.size());
    EXPECT_EQ(stats.torn_bytes, scan.torn_bytes);
    std::filesystem::remove_all(copy);
  }
  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace oodb
