// Byte-stable inferred matrices, pinned against checked-in goldens.
//
// The goldens live in tests/golden/infer_<schema>.txt and double as the
// reference for the CI inference drift gate, which diffs `oodb_infer
// <schema>` output against the same files — so this test reproduces the
// binary's text output exactly (schema header line + one RenderInferredText
// block per registered type, registry order). Regenerate after an
// intentional change with:
//   OODB_REGEN_GOLDENS=1 ./build/tests/analysis_infer_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/commutativity_inference.h"
#include "analysis/spec_synthesis.h"
#include "apps/bank.h"
#include "apps/document.h"
#include "apps/encyclopedia.h"
#include "cc/database.h"
#include "containers/bptree.h"
#include "containers/directory.h"
#include "containers/escrow.h"
#include "containers/fifo_queue.h"
#include "containers/hash_index.h"
#include "containers/page_ops.h"

namespace oodb {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(OODB_GOLDEN_DIR) + "/" + name;
}

void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("OODB_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with OODB_REGEN_GOLDENS=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual) << name;
}

/// Mirrors `oodb_infer <schema>`: the same registrations, the same
/// header, the same per-type rendering, in registry order.
std::string RenderSchema(const std::string& name) {
  Database db;
  if (name == "bank") {
    Bank::RegisterMethods(&db, BankSemantics::kEscrow);
    Bank::RegisterMethods(&db, BankSemantics::kNameOnly);
    Bank::RegisterMethods(&db, BankSemantics::kReadWrite);
  } else if (name == "document") {
    Document::RegisterMethods(&db);
  } else if (name == "encyclopedia") {
    Encyclopedia::RegisterMethods(&db);
  } else {
    RegisterQueueMethods(&db);
    RegisterDirectoryMethods(&db);
    RegisterAccountMethods(&db, EscrowAccountType());
    RegisterAccountMethods(&db, NameOnlyAccountType());
    RegisterAccountMethods(&db, RWAccountType());
    RegisterPageMethods(&db);
    BpTree::RegisterMethods(&db);
    HashIndex::RegisterMethods(&db);
  }
  std::string out = "== oodb_infer: schema '" + name + "' ==\n";
  for (const ObjectType* type : db.registry().Types()) {
    out += analysis::RenderInferredText(
        analysis::InferType(type, db.registry()));
  }
  return out;
}

TEST(InferGolden, Bank) {
  ExpectMatchesGolden(RenderSchema("bank"), "infer_bank.txt");
}

TEST(InferGolden, Containers) {
  ExpectMatchesGolden(RenderSchema("containers"), "infer_containers.txt");
}

TEST(InferGolden, Document) {
  ExpectMatchesGolden(RenderSchema("document"), "infer_document.txt");
}

TEST(InferGolden, Encyclopedia) {
  ExpectMatchesGolden(RenderSchema("encyclopedia"), "infer_encyclopedia.txt");
}

}  // namespace
}  // namespace oodb
