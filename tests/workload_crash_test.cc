// The crash-injection harness as a ctest: kill -9 at a few seeded WAL
// positions (including one after an epoch rotation), recover, and
// check recovered state against the committed-only oracle. The full
// sweep lives in CI / the oodb_crash CLI; this keeps a few always-run
// points in the default suite.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "workload/crash_harness.h"

namespace oodb {
namespace {

class CrashHarnessTest : public ::testing::TestWithParam<int64_t> {
 protected:
  CrashHarnessConfig Config(const char* tag) const {
    CrashHarnessConfig config;
    config.dir = "/tmp/oodb_crash_ctest_" + std::string(tag) + "_" +
                 std::to_string(GetParam()) + "_" +
                 std::to_string(::getpid());
    std::filesystem::remove_all(config.dir);
    config.seed = 1234;
    config.txns = 48;
    config.threads = 2;
    config.crash_after_appends = GetParam();
    config.post_txns = 12;
    return config;
  }
};

TEST_P(CrashHarnessTest, CrashRecoverVerify) {
  CrashHarnessConfig config = Config("plain");
  CrashHarnessReport report = CrashHarness::Run(config);
  EXPECT_TRUE(report.crashed) << report.Row();
  EXPECT_TRUE(report.ok()) << report.failure << "\n" << report.Row();
  std::filesystem::remove_all(config.dir);
}

TEST_P(CrashHarnessTest, CrashRecoverVerifyAcrossCheckpoints) {
  CrashHarnessConfig config = Config("ckpt");
  // Rotate epochs mid-workload so crash points land after a rotation
  // and the oracle spans archived WALs.
  config.checkpoint_every_commits = 5;
  CrashHarnessReport report = CrashHarness::Run(config);
  EXPECT_TRUE(report.crashed) << report.Row();
  EXPECT_TRUE(report.ok()) << report.failure << "\n" << report.Row();
  std::filesystem::remove_all(config.dir);
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CrashHarnessTest,
                         ::testing::Values(int64_t{7}, int64_t{31},
                                           int64_t{60}));

TEST(CrashHarnessCleanTest, NoCrashDegeneratesToRestartCheck) {
  CrashHarnessConfig config;
  config.dir =
      "/tmp/oodb_crash_ctest_clean_" + std::to_string(::getpid());
  std::filesystem::remove_all(config.dir);
  config.seed = 7;
  config.txns = 32;
  config.threads = 2;
  config.crash_after_appends = -1;  // child exits cleanly
  config.post_txns = 8;
  CrashHarnessReport report = CrashHarness::Run(config);
  EXPECT_FALSE(report.crashed);
  EXPECT_TRUE(report.ok()) << report.failure << "\n" << report.Row();
  std::filesystem::remove_all(config.dir);
}

}  // namespace
}  // namespace oodb
