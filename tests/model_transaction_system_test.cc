#include "model/transaction_system.h"

#include <gtest/gtest.h>

namespace oodb {
namespace {

// A composite type where keyed inserts commute unless the key matches.
const ObjectType* LeafType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    spec->SetPredicate("insert", "insert",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetPredicate("insert", "search",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetCommutes("search", "search");
    return new ObjectType("Leaf", std::move(spec));
  }();
  return type;
}

const ObjectType* PageType() {
  static const ObjectType* type = [] {
    return new ObjectType("Page",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"read"}),
                          /*primitive=*/true);
  }();
  return type;
}

TEST(TransactionSystemTest, SystemObjectExists) {
  TransactionSystem ts;
  EXPECT_EQ(ts.object_count(), 1u);
  EXPECT_EQ(ts.object(ObjectId::System()).name, "S");
  EXPECT_EQ(ts.object(ObjectId::System()).type, SystemObjectType());
}

TEST(TransactionSystemTest, AddObjectAssignsSequentialIds) {
  TransactionSystem ts;
  ObjectId a = ts.AddObject(LeafType(), "Leaf11");
  ObjectId b = ts.AddObject(PageType(), "Page4712");
  EXPECT_EQ(a.value, 1u);
  EXPECT_EQ(b.value, 2u);
  EXPECT_EQ(ts.object(a).name, "Leaf11");
  EXPECT_EQ(ts.object(b).type, PageType());
}

TEST(TransactionSystemTest, TopLevelIsActionOnSystemObject) {
  TransactionSystem ts;
  ActionId t1 = ts.BeginTopLevel("T1");
  EXPECT_EQ(ts.action(t1).object, ObjectId::System());
  EXPECT_FALSE(ts.action(t1).parent.valid());
  EXPECT_EQ(ts.TopLevelOf(t1), t1);
  ASSERT_EQ(ts.TopLevel().size(), 1u);
  EXPECT_EQ(ts.TopLevel()[0], t1);
  EXPECT_EQ(ts.ActionsOn(ObjectId::System()).size(), 1u);
}

TEST(TransactionSystemTest, CallBuildsTree) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, leaf, Invocation("insert", {Value("DBS")}));
  ActionId rd = ts.Call(ins, page, Invocation("read"));
  ActionId wr = ts.Call(ins, page, Invocation("write"));

  EXPECT_EQ(ts.action(ins).parent, t1);
  EXPECT_EQ(ts.action(rd).parent, ins);
  EXPECT_EQ(ts.TopLevelOf(wr), t1);
  ASSERT_EQ(ts.action(ins).children.size(), 2u);
  EXPECT_EQ(ts.action(ins).children[0], rd);
  EXPECT_EQ(ts.action(ins).children[1], wr);
  EXPECT_TRUE(ts.CallsTransitively(t1, wr));
  EXPECT_TRUE(ts.CallsTransitively(ins, rd));
  EXPECT_FALSE(ts.CallsTransitively(rd, ins));
  EXPECT_FALSE(ts.CallsTransitively(rd, wr));
}

TEST(TransactionSystemTest, LabelsAreHierarchical) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  ActionId b = ts.Call(t1, leaf, Invocation("insert", {Value("y")}));
  ActionId c = ts.Call(a, leaf, Invocation("search", {Value("x")}));
  EXPECT_EQ(ts.action(a).label, "T1.1");
  EXPECT_EQ(ts.action(b).label, "T1.2");
  EXPECT_EQ(ts.action(c).label, "T1.1.1");
}

TEST(TransactionSystemTest, SequentialCallsGetPrecedence) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, page, Invocation("read"));
  ActionId b = ts.Call(t1, page, Invocation("write"));
  EXPECT_TRUE(ts.MustPrecede(a, b));
  EXPECT_FALSE(ts.MustPrecede(b, a));
}

TEST(TransactionSystemTest, ParallelCallsHaveNoPrecedence) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, page, Invocation("read"), /*sequential=*/false);
  ActionId b = ts.Call(t1, page, Invocation("write"), /*sequential=*/false);
  EXPECT_FALSE(ts.MustPrecede(a, b));
  EXPECT_FALSE(ts.MustPrecede(b, a));
}

TEST(TransactionSystemTest, PrecedenceInheritedToDescendants) {
  // Def 7: a_12 must follow everything called by a_11 when a_11 < a_12.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a1 = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  ActionId a2 = ts.Call(t1, leaf, Invocation("insert", {Value("y")}));
  ActionId p1 = ts.Call(a1, page, Invocation("write"));
  ActionId p2 = ts.Call(a2, page, Invocation("write"));
  EXPECT_TRUE(ts.MustPrecede(p1, p2));
  EXPECT_TRUE(ts.MustPrecede(p1, a2));
  EXPECT_TRUE(ts.MustPrecede(a1, p2));
  EXPECT_FALSE(ts.MustPrecede(p2, p1));
}

TEST(TransactionSystemTest, MustPrecedeAcrossTransactionsIsFalse) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a = ts.Call(t1, page, Invocation("write"));
  ActionId b = ts.Call(t2, page, Invocation("write"));
  EXPECT_FALSE(ts.MustPrecede(a, b));
  EXPECT_FALSE(ts.MustPrecede(b, a));
}

TEST(TransactionSystemTest, MustPrecedeAncestorDescendantIsFalse) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  ActionId p = ts.Call(a, page, Invocation("write"));
  EXPECT_FALSE(ts.MustPrecede(a, p));
  EXPECT_FALSE(ts.MustPrecede(p, a));
}

TEST(TransactionSystemTest, ExplicitPrecedenceValidation) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a = ts.Call(t1, page, Invocation("read"), false);
  ActionId b = ts.Call(t1, page, Invocation("write"), false);
  ActionId c = ts.Call(t2, page, Invocation("read"), false);
  EXPECT_TRUE(ts.AddPrecedence(a, b).ok());
  EXPECT_TRUE(ts.MustPrecede(a, b));
  // Different parents: rejected.
  EXPECT_FALSE(ts.AddPrecedence(a, c).ok());
}

TEST(TransactionSystemTest, PrimitiveDetection) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  ActionId rd = ts.Call(ins, page, Invocation("read"));
  EXPECT_TRUE(ts.IsPrimitive(rd));
  EXPECT_FALSE(ts.IsPrimitive(ins));   // leaf type is not primitive
  EXPECT_FALSE(ts.IsPrimitive(t1));
  auto prims = ts.PrimitiveActionsOn(page);
  ASSERT_EQ(prims.size(), 1u);
  EXPECT_EQ(prims[0], rd);
}

TEST(TransactionSystemTest, ChildlessCompositeIsNotPrimitive) {
  // An action on a non-primitive type with no calls (yet) is still not a
  // primitive action: only zero-layer types qualify.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId ins = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  EXPECT_FALSE(ts.IsPrimitive(ins));
}

TEST(TransactionSystemTest, TransactionsOnDeduplicatesCallers) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "Page");
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId i1 = ts.Call(t1, leaf, Invocation("insert", {Value("x")}));
  ActionId i2 = ts.Call(t2, leaf, Invocation("insert", {Value("y")}));
  ts.Call(i1, page, Invocation("read"));
  ts.Call(i1, page, Invocation("write"));
  ts.Call(i2, page, Invocation("write"));
  auto tra = ts.TransactionsOn(page);
  ASSERT_EQ(tra.size(), 2u);
  EXPECT_EQ(tra[0], i1);
  EXPECT_EQ(tra[1], i2);
  // TRA_Leaf = the top-level transactions.
  auto tra_leaf = ts.TransactionsOn(leaf);
  ASSERT_EQ(tra_leaf.size(), 2u);
}

TEST(TransactionSystemTest, CommuteUsesTypeSpec) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("DBS")}));
  ActionId b = ts.Call(t2, leaf, Invocation("insert", {Value("DBMS")}));
  ActionId c = ts.Call(t2, leaf, Invocation("search", {Value("DBS")}));
  EXPECT_TRUE(ts.Commute(a, b));   // different keys
  EXPECT_FALSE(ts.Commute(a, c));  // same key, insert vs search
}

TEST(TransactionSystemTest, SameProcessNeverConflicts) {
  // Def 9: actions of the same process are never in conflict, even when
  // the type says the invocations conflict.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("k")}));
  ActionId b = ts.Call(t1, leaf, Invocation("search", {Value("k")}));
  EXPECT_TRUE(ts.Commute(a, b));  // same process of T1
}

TEST(TransactionSystemTest, DifferentProcessesOfOneTransactionConflict) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("k")}), false);
  ActionId b = ts.Call(t1, leaf, Invocation("search", {Value("k")}), false);
  ts.SetProcess(b, 1);
  EXPECT_FALSE(ts.Commute(a, b));
}

TEST(TransactionSystemTest, ChildInheritsProcess) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf");
  ObjectId page = ts.AddObject(PageType(), "Page");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("k")}));
  ActionId p = ts.Call(a, page, Invocation("write"));
  EXPECT_EQ(ts.action(p).process, 0u);
  ts.SetProcess(a, 3);
  // Children created after the change inherit the new process id; an
  // existing child keeps its own.
  ActionId q = ts.Call(a, page, Invocation("write"));
  EXPECT_EQ(ts.action(q).process, 3u);
  EXPECT_EQ(ts.action(p).process, 0u);
}

TEST(TransactionSystemTest, TimestampsMonotone) {
  TransactionSystem ts;
  uint64_t a = ts.NextTimestamp();
  uint64_t b = ts.NextTimestamp();
  EXPECT_LT(a, b);
  EXPECT_GT(a, 0u);  // 0 means "unset"
}

TEST(TransactionSystemTest, DescribeMentionsObjectAndMethod) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf11");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Invocation("insert", {Value("DBS")}));
  std::string d = ts.Describe(a);
  EXPECT_NE(d.find("Leaf11.insert(DBS)"), std::string::npos);
  EXPECT_NE(d.find("T1.1"), std::string::npos);
}

TEST(TransactionSystemTest, ObjectsExcludesSystem) {
  TransactionSystem ts;
  ts.AddObject(LeafType(), "A");
  ts.AddObject(PageType(), "B");
  auto objs = ts.Objects();
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].value, 1u);
}

}  // namespace
}  // namespace oodb
