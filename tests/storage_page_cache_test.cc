// Buffer manager and page allocator: pin/unpin discipline, LRU
// eviction with dirty writeback, capacity pressure, and the allocator
// bitmap round trip.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "storage/page_allocator.h"
#include "storage/page_cache.h"
#include "storage/paged_file.h"

namespace oodb {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/oodb_page_cache_test_" + std::to_string(::getpid());
    std::remove(path_.c_str());
    ASSERT_TRUE(file_.Open(path_).ok());
  }
  void TearDown() override {
    file_.Close();
    std::remove(path_.c_str());
  }

  void WriteThrough(PageCache* cache, PageNo page, char fill) {
    auto frame = cache->Pin(page);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    std::memset(*frame, fill, kPageSize);
    ASSERT_TRUE(cache->Unpin(page, /*dirty=*/true).ok());
  }

  std::string path_;
  PagedFile file_;
};

TEST_F(PageCacheTest, MissLoadsFromFileAndPinNests) {
  char buf[kPageSize];
  std::memset(buf, 'a', kPageSize);
  ASSERT_TRUE(file_.WritePage(3, buf).ok());

  PageCache cache(&file_, /*frames=*/4);
  auto frame = cache.Pin(3);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[0], 'a');
  EXPECT_EQ((*frame)[kPageSize - 1], 'a');

  // A second pin of the same page is a hit on the same frame.
  auto again = cache.Pin(3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*frame, *again);
  EXPECT_EQ(cache.PinnedCount(), 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  ASSERT_TRUE(cache.Unpin(3, false).ok());
  ASSERT_TRUE(cache.Unpin(3, false).ok());
  EXPECT_EQ(cache.PinnedCount(), 0u);

  // Never-written pages read as zeroes through the cache too.
  auto zero = cache.Pin(9);
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ((*zero)[17], 0);
  ASSERT_TRUE(cache.Unpin(9, false).ok());
}

TEST_F(PageCacheTest, LruEvictionWritesBackDirtyFrames) {
  PageCache cache(&file_, /*frames=*/2);
  WriteThrough(&cache, 0, 'x');
  WriteThrough(&cache, 1, 'y');
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Page 0 is the LRU victim; its dirty frame must hit the file before
  // page 2 takes the frame.
  WriteThrough(&cache, 2, 'z');
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_GE(cache.stats().writebacks, 1u);

  char buf[kPageSize];
  ASSERT_TRUE(file_.ReadPage(0, buf).ok());
  EXPECT_EQ(buf[0], 'x');
  EXPECT_EQ(buf[kPageSize - 1], 'x');

  // Re-pinning page 0 is a miss that reloads the written-back bytes.
  auto frame = cache.Pin(0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[100], 'x');
  ASSERT_TRUE(cache.Unpin(0, false).ok());
}

TEST_F(PageCacheTest, AllFramesPinnedIsCapacity) {
  PageCache cache(&file_, /*frames=*/2);
  ASSERT_TRUE(cache.Pin(0).ok());
  ASSERT_TRUE(cache.Pin(1).ok());
  auto full = cache.Pin(2);
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kCapacity);

  // Releasing one pin frees a victim frame.
  ASSERT_TRUE(cache.Unpin(1, false).ok());
  EXPECT_TRUE(cache.Pin(2).ok());
  ASSERT_TRUE(cache.Unpin(0, false).ok());
  ASSERT_TRUE(cache.Unpin(2, false).ok());
}

TEST_F(PageCacheTest, UnpinWithoutPinIsInternalError) {
  PageCache cache(&file_, 2);
  EXPECT_FALSE(cache.Unpin(5, false).ok());
  auto frame = cache.Pin(5);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(cache.Unpin(5, false).ok());
  EXPECT_FALSE(cache.Unpin(5, false).ok());
}

TEST_F(PageCacheTest, FlushAllThenInvalidateClean) {
  PageCache cache(&file_, 4);
  WriteThrough(&cache, 0, 'p');
  WriteThrough(&cache, 1, 'q');

  // Dirty frames may not be invalidated away...
  EXPECT_FALSE(cache.InvalidateClean().ok());

  // ...but after a flush they are clean and droppable.
  ASSERT_TRUE(cache.FlushAll().ok());
  EXPECT_GE(cache.stats().writebacks, 2u);
  ASSERT_TRUE(cache.InvalidateClean().ok());

  // The file was rewritten underneath (recovery restart); the cache
  // must reload, not serve stale frames.
  char buf[kPageSize];
  std::memset(buf, 'R', kPageSize);
  ASSERT_TRUE(file_.WritePage(0, buf).ok());
  auto frame = cache.Pin(0);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ((*frame)[0], 'R');
  ASSERT_TRUE(cache.Unpin(0, false).ok());
}

TEST_F(PageCacheTest, AttachMetricsRegistersCountersMatchingStats) {
  PageCache cache(&file_, /*frames=*/2);
  // Traffic before attach: counters must be seeded from stats() so the
  // registered counters and the struct snapshot never disagree.
  WriteThrough(&cache, 0, 'a');
  WriteThrough(&cache, 1, 'b');
  WriteThrough(&cache, 2, 'c');  // evicts + writes back page 0

  MetricsRegistry registry;
  cache.AttachMetrics(&registry);
  auto expect_matches_stats = [&]() {
    const PageCacheStats& s = cache.stats();
    EXPECT_EQ(registry.GetCounter("storage.cache.hits")->Value(),
              static_cast<int64_t>(s.hits));
    EXPECT_EQ(registry.GetCounter("storage.cache.misses")->Value(),
              static_cast<int64_t>(s.misses));
    EXPECT_EQ(registry.GetCounter("storage.cache.evictions")->Value(),
              static_cast<int64_t>(s.evictions));
    EXPECT_EQ(registry.GetCounter("storage.cache.writebacks")->Value(),
              static_cast<int64_t>(s.writebacks));
  };
  expect_matches_stats();

  // Traffic after attach feeds the counters inline (monotone counters,
  // not republished gauges — sampler deltas stay meaningful).
  WriteThrough(&cache, 1, 'd');  // hit or miss depending on residency
  WriteThrough(&cache, 3, 'e');
  WriteThrough(&cache, 4, 'f');
  expect_matches_stats();
  EXPECT_GT(registry.GetCounter("storage.cache.misses")->Value(), 0);
  EXPECT_GT(registry.GetCounter("storage.cache.evictions")->Value(), 0);
}

TEST_F(PageCacheTest, PinDurationHistogramCountsOutermostUnpins) {
  PageCache cache(&file_, /*frames=*/4);
  MetricsRegistry registry;
  cache.AttachMetrics(&registry);
  HistogramMetric* pin_ns = registry.GetHistogram("storage.cache.pin_ns");

  // A nested pin observes once, on the outermost unpin.
  ASSERT_TRUE(cache.Pin(0).ok());
  ASSERT_TRUE(cache.Pin(0).ok());
  ASSERT_TRUE(cache.Unpin(0, false).ok());
  EXPECT_EQ(pin_ns->Snapshot().count(), 0u);
  ASSERT_TRUE(cache.Unpin(0, false).ok());
  EXPECT_EQ(pin_ns->Snapshot().count(), 1u);

  ASSERT_TRUE(cache.Pin(1).ok());
  ASSERT_TRUE(cache.Unpin(1, true).ok());
  const auto snap = pin_ns->Snapshot();
  EXPECT_EQ(snap.count(), 2u);
  EXPECT_GT(snap.sum(), 0u);
}

TEST_F(PageCacheTest, EvictionAgeHistogramObservesEvictions) {
  PageCache cache(&file_, /*frames=*/2);
  MetricsRegistry registry;
  cache.AttachMetrics(&registry);
  HistogramMetric* age = registry.GetHistogram("storage.cache.eviction_age_ns");

  WriteThrough(&cache, 0, 'x');
  WriteThrough(&cache, 1, 'y');
  EXPECT_EQ(age->Snapshot().count(), 0u);
  WriteThrough(&cache, 2, 'z');  // evicts the idle page 0
  EXPECT_EQ(age->Snapshot().count(), 1u);
}

TEST_F(PageCacheTest, HotPagesRanksByPinCount) {
  PageCache cache(&file_, /*frames=*/4);
  MetricsRegistry registry;
  cache.AttachMetrics(&registry);

  auto touch = [&](PageNo page, int times) {
    for (int i = 0; i < times; ++i) {
      ASSERT_TRUE(cache.Pin(page).ok());
      ASSERT_TRUE(cache.Unpin(page, false).ok());
    }
  };
  touch(7, 5);
  touch(3, 2);
  touch(9, 2);
  touch(1, 1);

  // Pins descending, then page ascending on ties; k truncates.
  const auto hot = cache.HotPages(3);
  ASSERT_EQ(hot.size(), 3u);
  EXPECT_EQ(hot[0].page, 7u);
  EXPECT_EQ(hot[0].pins, 5u);
  EXPECT_EQ(hot[1].page, 3u);
  EXPECT_EQ(hot[1].pins, 2u);
  EXPECT_EQ(hot[2].page, 9u);
  EXPECT_EQ(hot[2].pins, 2u);

  const auto all = cache.HotPages(16);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[3].page, 1u);
}

TEST(PageAllocatorTest, AllocateLowestFreeAndFree) {
  PageAllocator alloc(/*first_page=*/4, /*max_pages=*/16);
  EXPECT_EQ(alloc.AllocatedCount(), 0u);
  EXPECT_EQ(*alloc.Allocate(), 4u);
  EXPECT_EQ(*alloc.Allocate(), 5u);
  EXPECT_EQ(*alloc.Allocate(), 6u);
  EXPECT_TRUE(alloc.IsAllocated(5));
  ASSERT_TRUE(alloc.Free(5).ok());
  EXPECT_FALSE(alloc.IsAllocated(5));
  // Lowest-free discipline: the hole is reused before fresh pages.
  EXPECT_EQ(*alloc.Allocate(), 5u);
  EXPECT_EQ(alloc.AllocatedCount(), 3u);

  // Double free is a loud internal error.
  ASSERT_TRUE(alloc.Free(6).ok());
  EXPECT_FALSE(alloc.Free(6).ok());
}

TEST(PageAllocatorTest, ExhaustionIsCapacity) {
  PageAllocator alloc(0, 3);
  EXPECT_TRUE(alloc.Allocate().ok());
  EXPECT_TRUE(alloc.Allocate().ok());
  EXPECT_TRUE(alloc.Allocate().ok());
  auto full = alloc.Allocate();
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kCapacity);
  ASSERT_TRUE(alloc.Free(1).ok());
  EXPECT_EQ(*alloc.Allocate(), 1u);
}

TEST(PageAllocatorTest, BitmapRoundTrip) {
  PageAllocator alloc(2, 24);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(alloc.Allocate().ok());
  ASSERT_TRUE(alloc.Free(4).ok());
  std::string bits = alloc.SerializeBitmap();
  EXPECT_EQ(bits.size(), 24u / 8);

  PageAllocator other(2, 24);
  ASSERT_TRUE(other.LoadBitmap(bits).ok());
  EXPECT_EQ(other.AllocatedCount(), alloc.AllocatedCount());
  for (PageNo p = 2; p < 2 + 24; ++p) {
    EXPECT_EQ(other.IsAllocated(p), alloc.IsAllocated(p)) << p;
  }
  // The reloaded allocator continues the same lowest-free order.
  EXPECT_EQ(*other.Allocate(), *alloc.Allocate());

  // Shorter bitmap leaves the tail free; longer is rejected.
  PageAllocator shorter(2, 24);
  ASSERT_TRUE(shorter.LoadBitmap(bits.substr(0, 1)).ok());
  EXPECT_LE(shorter.AllocatedCount(), 8u);
  PageAllocator longer(2, 8);
  EXPECT_EQ(longer.LoadBitmap(bits).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace oodb
