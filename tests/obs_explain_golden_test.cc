// Byte-stable explanations, pinned against checked-in goldens:
//
//   * the Fig 7 / Example 4 schedule through the real runtime (the
//     accepting case: relations + serialization order, no witnesses);
//   * every Section 9 anomaly scenario (bad variant) — witness cycles
//     with full provenance chains down to the Axiom 1 conflicts;
//   * the paper's B-link rearrangement world, where the witness chain
//     hops through the Def 5 virtual object Node6'.
//
// The goldens live in tests/golden/ and double as the reference for
// the CI explain gate, which diffs `oodb_explain` output against the
// same files. Regenerate after an intentional format change with:
//   OODB_REGEN_GOLDENS=1 ./build/tests/obs_explain_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/encyclopedia.h"
#include "cc/database.h"
#include "obs/explain.h"
#include "schedule/validator.h"
#include "workload/anomalies.h"

namespace oodb {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(OODB_GOLDEN_DIR) + "/" + name;
}

/// Compares `actual` against the golden file, or rewrites the file when
/// OODB_REGEN_GOLDENS is set.
void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("OODB_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (regenerate with OODB_REGEN_GOLDENS=1)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), actual) << name;
}

/// Provenance-recording serial validation — the deterministic pipeline
/// oodb_explain runs, so these goldens also pin the CLI's output.
ValidationReport Validate(TransactionSystem* ts) {
  ValidationOptions options;
  options.record_provenance = true;
  options.num_threads = 1;
  return Validator::Validate(ts, options);
}

TEST(ExplainGoldenTest, S9AnomalyExplanations) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    std::unique_ptr<TransactionSystem> ts = MakeAnomaly(kind, /*bad=*/true);
    ValidationReport report = Validate(ts.get());
    EXPECT_FALSE(report.oo_serializable) << AnomalyKindName(kind);
    Explainer explainer(*ts, report);
    ExpectMatchesGolden(explainer.Text(), std::string("explain_s9_") +
                                              AnomalyKindName(kind) + ".txt");
  }
}

TEST(ExplainGoldenTest, S9LostUpdateDotAndJson) {
  std::unique_ptr<TransactionSystem> ts =
      MakeAnomaly(AnomalyKind::kLostUpdate, /*bad=*/true);
  ValidationReport report = Validate(ts.get());
  Explainer explainer(*ts, report);
  ExpectMatchesGolden(explainer.Dot(), "explain_s9_lost-update.dot");
  ExpectMatchesGolden(explainer.Json(), "explain_s9_lost-update.json");
}

TEST(ExplainGoldenTest, Fig7Explanation) {
  // The Example 4 schedule through the real runtime, exactly as
  // `oodb_explain --workload=fig7` runs it.
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", 8, 8, 4);
  (void)db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(enc, Encyclopedia::Insert("DBS", "database systems"));
  });
  (void)db.RunTransaction("T2", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(enc, Encyclopedia::Insert("DBMS", "dbms v1")));
    return txn.Call(enc, Encyclopedia::Change("DBMS", "dbms v2"));
  });
  (void)db.RunTransaction("T3", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::Search("DBS"), &out);
  });
  (void)db.RunTransaction("T4", [&](MethodContext& txn) {
    Value out;
    return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
  });

  ValidationReport report = Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable);
  EXPECT_TRUE(report.witnesses.empty());
  Explainer explainer(db.ts(), report);
  ExpectMatchesGolden(explainer.Text(), "explain_fig7.txt");
}

// --- the B-link world: a Def 5 virtual-object witness ----------------

/// B-link node pages: insert and rearrange are primitive page-level
/// operations; inserts on the same key conflict, rearrangement
/// conflicts with everything.
const ObjectType* NodeType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    spec->SetPredicate("insert", "insert",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetConflicts("insert", "rearrange");
    spec->SetConflicts("rearrange", "rearrange");
    return new ObjectType("Node", std::move(spec), /*primitive=*/true);
  }();
  return type;
}

/// The paper's section 2 shape: T1's insert into Node6 triggers a
/// rearrangement of Node6 itself — the call-path cycle the Def 5
/// extension breaks by moving the rearrangement to the virtual object
/// Node6' and virtually duplicating the other Node6 actions there. T2
/// inserts the same key into Node6 and the same key into Leaf11 as T1,
/// but the two objects saw the transactions in opposite orders:
///   Node6':  T1.rearrange (t=1)  before  T2.insert' (t=2)
///   Leaf11:  T2.insert    (t=3)  before  T1.insert  (t=4)
/// The contradiction (Def 13 ii, at S) is only derivable through the
/// virtual object: the rearrange/insert conflict surfaces on Node6',
/// inherits to the Node6 inserts (Def 10), and is placed back at Node6
/// (Def 11) — the witness chain must hop through Node6'.
std::unique_ptr<TransactionSystem> MakeBLinkConflict() {
  auto ts = std::make_unique<TransactionSystem>();
  ObjectId node6 = ts->AddObject(NodeType(), "Node6");
  ObjectId leaf11 = ts->AddObject(NodeType(), "Leaf11");

  ActionId t1 = ts->BeginTopLevel("T1");
  ActionId ins1 = ts->Call(t1, node6, Invocation("insert", {Value("k")}));
  ActionId rearr1 = ts->Call(ins1, node6, Invocation("rearrange"));
  ActionId leaf1 = ts->Call(t1, leaf11, Invocation("insert", {Value("m")}));

  ActionId t2 = ts->BeginTopLevel("T2");
  ActionId ins2 = ts->Call(t2, node6, Invocation("insert", {Value("k")}));
  ActionId leaf2 = ts->Call(t2, leaf11, Invocation("insert", {Value("m")}));

  ts->SetTimestamp(rearr1, 1);
  ts->SetTimestamp(ins2, 2);  // the Def 5 duplicate carries this stamp
  ts->SetTimestamp(leaf2, 3);
  ts->SetTimestamp(leaf1, 4);
  return ts;
}

TEST(ExplainGoldenTest, BLinkVirtualObjectWitness) {
  std::unique_ptr<TransactionSystem> ts = MakeBLinkConflict();
  ValidationReport report = Validate(ts.get());
  EXPECT_FALSE(report.oo_serializable);
  EXPECT_EQ(report.extension.virtual_objects, 1u);
  ASSERT_FALSE(report.witnesses.empty());

  // Some witness chain must hop through a Def 5 virtual object.
  bool virtual_hop = false;
  for (const Witness& w : report.witnesses) {
    for (const Witness::Edge& e : w.edges) {
      for (const ProvenanceStep& step : e.chain) {
        if (step.object.valid() && ts->object(step.object).is_virtual) {
          virtual_hop = true;
          EXPECT_EQ(ts->object(step.object).name, "Node6'");
        }
      }
    }
  }
  EXPECT_TRUE(virtual_hop);

  Explainer explainer(*ts, report);
  std::string text = explainer.Text();
  EXPECT_NE(text.find("virtual of Node6, Def 5"), std::string::npos);
  ExpectMatchesGolden(text, "explain_blink.txt");
}

}  // namespace
}  // namespace oodb
