// Property tests for the linter, plus the memoization regression the
// honesty pass exists to prevent: a spec that truthfully declares
// kNone (state-dependent, escrow-style) must never be served from the
// conflict-index memo, while a mis-declared state-dependent spec that
// claims a memoizable class must be caught by the honesty pass.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/corpus.h"
#include "analysis/memo_honesty.h"
#include "cc/database.h"
#include "model/transaction_system.h"
#include "schedule/conflict_index.h"
#include "util/random.h"

namespace oodb {
namespace {

using analysis::BuildTypeCorpus;
using analysis::CheckMemoHonesty;
using analysis::HonestyOptions;
using analysis::MutateParams;
using analysis::Severity;

Status NoOp(MethodContext&, const ValueList&, Value*) {
  return Status::OK();
}

/// Answers depend on a hidden counter but the declaration claims
/// parameter-level purity. Symmetric by construction (method lengths
/// commute under +), so only the honesty pass can object.
class HiddenCounterSpec : public CommutativitySpec {
 public:
  explicit HiddenCounterSpec(const int* counter) : counter_(counter) {}
  bool Commutes(const Invocation& a, const Invocation& b) const override {
    return (*counter_ + a.method.size() + b.method.size()) % 2 == 0;
  }
  CommutativityMemo memo() const override {
    return CommutativityMemo::kInvocationPair;
  }

 private:
  const int* counter_;
};

TEST(MemoHonestyProperty, MisdeclaredSpecIsCaughtAcrossRandomSchemas) {
  Rng rng(20260805);
  for (int trial = 0; trial < 32; ++trial) {
    int counter = static_cast<int>(rng.NextBelow(1000));
    ObjectType type("Hidden" + std::to_string(trial),
                    std::make_unique<HiddenCounterSpec>(&counter));
    Database db;
    const size_t methods = 1 + rng.NextBelow(4);
    for (size_t m = 0; m < methods; ++m) {
      // Random-length names vary which pairs commute at baseline.
      std::string name(1 + rng.NextBelow(6), 'a' + char(m));
      db.Register(&type, name, NoOp,
                  {.calls = {},
                   .samples = {{Value(int64_t(rng.NextBelow(100)))}},
                   .compensations = {}});
    }
    HonestyOptions options;
    options.state_perturbations.push_back([&counter] { ++counter; });
    const auto diags =
        CheckMemoHonesty(BuildTypeCorpus(&type, db.registry()), options);
    bool caught = false;
    for (const auto& d : diags) {
      if (d.severity == Severity::kError) caught = true;
    }
    EXPECT_TRUE(caught) << "trial " << trial
                        << ": state-dependent spec claiming "
                           "kInvocationPair escaped the honesty pass";
  }
}

TEST(CorpusProperty, MutationPreservesArityAndKinds) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    ValueList params;
    const size_t arity = rng.NextBelow(5);
    for (size_t i = 0; i < arity; ++i) {
      switch (rng.NextBelow(3)) {
        case 0:
          params.emplace_back(int64_t(rng.NextBelow(1000)));
          break;
        case 1:
          params.emplace_back("s" + std::to_string(rng.NextBelow(10)));
          break;
        default:
          params.emplace_back();
      }
    }
    const ValueList mutated = MutateParams(params);
    ASSERT_EQ(mutated.size(), params.size());
    bool mutable_slot = false;
    for (size_t i = 0; i < params.size(); ++i) {
      EXPECT_EQ(params[i].IsInt(), mutated[i].IsInt());
      EXPECT_EQ(params[i].IsString(), mutated[i].IsString());
      EXPECT_EQ(params[i].IsNone(), mutated[i].IsNone());
      if (!params[i].IsNone()) {
        mutable_slot = true;
        EXPECT_FALSE(params[i] == mutated[i]);
      }
    }
    if (mutable_slot) {
      EXPECT_FALSE(params == mutated);
    }
  }
}

// --- the regression the honesty pass guards --------------------------

std::unique_ptr<PredicateCommutativity> EscrowStyleSpec(
    const int64_t* balance) {
  // deposit always commutes with deposit; withdraw/withdraw and
  // deposit/withdraw commute only while the balance stays comfortable —
  // a function of object state, hence DeclareStateDependent.
  auto spec = std::make_unique<PredicateCommutativity>();
  spec->SetCommutes("deposit", "deposit");
  spec->SetPredicate("deposit", "withdraw",
                     [balance](const Invocation&, const Invocation&) {
                       return *balance > 100;
                     });
  spec->SetPredicate("withdraw", "withdraw",
                     [balance](const Invocation&, const Invocation&) {
                       return *balance > 100;
                     });
  spec->DeclareStateDependent();
  return spec;
}

TEST(ConflictIndexRegression, CorrectlyDeclaredEscrowSpecNeverMemoizes) {
  int64_t balance = 500;
  ObjectType type("EscrowLike", EscrowStyleSpec(&balance),
                  /*primitive=*/true);
  ASSERT_EQ(type.commutativity().memo(), CommutativityMemo::kNone);

  TransactionSystem ts;
  const ObjectId obj = ts.AddObject(&type, "acct");
  std::vector<ActionId> actions;
  for (int i = 0; i < 4; ++i) {
    const ActionId top = ts.BeginTopLevel("T" + std::to_string(i));
    actions.push_back(ts.Call(
        top, obj,
        Invocation(i % 2 == 0 ? "deposit" : "withdraw", {Value(10)})));
  }

  ConflictIndex index(ts);
  index.BuildForObject(obj);
  EXPECT_EQ(index.memo_hits(), 0u);

  // Every repeated query must go back to the spec: the answers move
  // with the balance, so yesterday's answer may be wrong today.
  const size_t calls_after_build = index.spec_calls();
  EXPECT_TRUE(index.Commute(actions[1], actions[2]));
  balance = 0;  // drains: mutator pairs stop commuting
  EXPECT_FALSE(index.Commute(actions[1], actions[2]));
  EXPECT_TRUE(index.Commute(actions[0], actions[2]));  // deposit pair
  EXPECT_EQ(index.memo_hits(), 0u);
  EXPECT_GT(index.spec_calls(), calls_after_build);
}

TEST(ConflictIndexRegression, MethodPairSpecDoesMemoize) {
  // The contrast case: an honest kMethodPair matrix is decided once per
  // class pair at build time and served from the memo afterwards.
  auto spec = std::make_unique<MatrixCommutativity>();
  spec->SetCommutes("r", "r");
  ObjectType type("Memoizable", std::move(spec), /*primitive=*/true);

  TransactionSystem ts;
  const ObjectId obj = ts.AddObject(&type, "o");
  const ObjectId obj2 = ts.AddObject(&type, "o2");
  std::vector<ActionId> actions;
  for (int i = 0; i < 4; ++i) {
    const ActionId top = ts.BeginTopLevel("T" + std::to_string(i));
    actions.push_back(
        ts.Call(top, obj, Invocation(i % 2 == 0 ? "r" : "w")));
    ts.Call(top, obj2, Invocation(i % 2 == 0 ? "r" : "w"));
  }

  ConflictIndex index(ts);
  index.BuildForObject(obj);
  const size_t calls_after_build = index.spec_calls();
  // The second object of the type reuses every class-pair decision
  // from the shared per-type cache: memo hits, no new spec calls.
  index.BuildForObject(obj2);
  EXPECT_GT(index.memo_hits(), 0u);
  EXPECT_EQ(index.spec_calls(), calls_after_build);
  // Queries on a memoized object are served from the class matrix.
  EXPECT_TRUE(index.Commute(actions[0], actions[2]));
  EXPECT_FALSE(index.Commute(actions[0], actions[1]));
  EXPECT_EQ(index.spec_calls(), calls_after_build);
}

}  // namespace
}  // namespace oodb
