// Fault injection: transactions abort at random points under
// concurrency; the database must compensate precisely (state equals the
// committed-only outcome), release every lock, and leave an
// oo-serializable history.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>

#include "apps/encyclopedia.h"
#include "containers/codec.h"
#include "containers/directory.h"
#include "schedule/validator.h"
#include "util/random.h"

namespace oodb {
namespace {

class FaultInjectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultInjectionTest, RandomAbortsLeaveConsistentDirectory) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");

  std::mutex oracle_mutex;
  std::set<std::string> committed_keys;

  constexpr int kThreads = 4;
  constexpr int kTxnsEach = 30;
  std::vector<std::thread> threads;
  uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 1000 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        // Each transaction inserts 1-3 distinct keys, then aborts with
        // probability 1/2 after a random number of them.
        std::vector<std::string> keys;
        int n = 1 + int(rng.NextBelow(3));
        for (int k = 0; k < n; ++k) {
          keys.push_back("t" + std::to_string(t) + "_i" +
                         std::to_string(i) + "_k" + std::to_string(k));
        }
        bool abort = rng.NextBool(0.5);
        size_t abort_after = rng.NextBelow(keys.size() + 1);
        Status st = db.RunTransaction("F", [&](MethodContext& txn) {
          for (size_t k = 0; k < keys.size(); ++k) {
            if (abort && k == abort_after) {
              return Status::Aborted("injected");
            }
            OODB_RETURN_IF_ERROR(txn.Call(
                dir, Invocation("insert", {Value(keys[k]), Value("v")})));
          }
          if (abort && abort_after == keys.size()) {
            return Status::Aborted("injected");
          }
          return Status::OK();
        });
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          for (const std::string& k : keys) committed_keys.insert(k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // State equals the committed-only oracle.
  auto* state = db.StateOf<DirectoryState>(dir);
  std::set<std::string> actual;
  for (const auto& [k, v] : state->entries) {
    (void)v;
    actual.insert(k);
  }
  EXPECT_EQ(actual, committed_keys);
  EXPECT_EQ(db.locks().LockCount(), 0u);

  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

TEST_P(FaultInjectionTest, RandomAbortsOnEncyclopedia) {
  // Same discipline over the nested app: aborted inserts/changes leave
  // no trace in the tree, the list, or the items — even across page
  // sharing and splits.
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/4,
                                      /*fanout=*/4, /*items_per_page=*/4);

  std::mutex oracle_mutex;
  std::set<std::string> committed_keys;

  constexpr int kThreads = 3;
  constexpr int kTxnsEach = 15;
  std::vector<std::thread> threads;
  uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 7919 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        bool abort = rng.NextBool(0.4);
        Status st = db.RunTransaction("F", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(
              txn.Call(enc, Encyclopedia::Insert(key, "data-" + key)));
          if (abort) return Status::Aborted("injected");
          return Status::OK();
        });
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          committed_keys.insert(key);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.locks().LockCount(), 0u);

  // readSeq sees exactly the committed keys.
  Value seq;
  ASSERT_TRUE(db.RunTransaction("check", [&](MethodContext& txn) {
                  return txn.Call(enc, Encyclopedia::ReadSeq(), &seq);
                }).ok());
  std::set<std::string> listed;
  auto fields = SplitFields(seq.AsString());
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    listed.insert(fields[i]);
  }
  EXPECT_EQ(listed, committed_keys);

  // Searches agree.
  for (const std::string& key : committed_keys) {
    Value out;
    ASSERT_TRUE(db.RunTransaction("get", [&](MethodContext& txn) {
                    return txn.Call(enc, Encyclopedia::Search(key), &out);
                  }).ok());
    EXPECT_EQ(out.AsString(), "data-" + key) << key;
  }

  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace oodb
