// Fault injection: transactions abort at random points under
// concurrency; the database must compensate precisely (state equals the
// committed-only outcome), release every lock, and leave an
// oo-serializable history.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>

#include "apps/encyclopedia.h"
#include "containers/codec.h"
#include "containers/directory.h"
#include "schedule/validator.h"
#include "util/random.h"

namespace oodb {
namespace {

class FaultInjectionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultInjectionTest, RandomAbortsLeaveConsistentDirectory) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");

  std::mutex oracle_mutex;
  std::set<std::string> committed_keys;

  constexpr int kThreads = 4;
  constexpr int kTxnsEach = 30;
  std::vector<std::thread> threads;
  uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 1000 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        // Each transaction inserts 1-3 distinct keys, then aborts with
        // probability 1/2 after a random number of them.
        std::vector<std::string> keys;
        int n = 1 + int(rng.NextBelow(3));
        for (int k = 0; k < n; ++k) {
          keys.push_back("t" + std::to_string(t) + "_i" +
                         std::to_string(i) + "_k" + std::to_string(k));
        }
        bool abort = rng.NextBool(0.5);
        size_t abort_after = rng.NextBelow(keys.size() + 1);
        Status st = db.RunTransaction("F", [&](MethodContext& txn) {
          for (size_t k = 0; k < keys.size(); ++k) {
            if (abort && k == abort_after) {
              return Status::Aborted("injected");
            }
            OODB_RETURN_IF_ERROR(txn.Call(
                dir, Invocation("insert", {Value(keys[k]), Value("v")})));
          }
          if (abort && abort_after == keys.size()) {
            return Status::Aborted("injected");
          }
          return Status::OK();
        });
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          for (const std::string& k : keys) committed_keys.insert(k);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // State equals the committed-only oracle.
  auto* state = db.StateOf<DirectoryState>(dir);
  std::set<std::string> actual;
  for (const auto& [k, v] : state->entries) {
    (void)v;
    actual.insert(k);
  }
  EXPECT_EQ(actual, committed_keys);
  EXPECT_EQ(db.locks().LockCount(), 0u);

  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

TEST_P(FaultInjectionTest, RandomAbortsOnEncyclopedia) {
  // Same discipline over the nested app: aborted inserts/changes leave
  // no trace in the tree, the list, or the items — even across page
  // sharing and splits.
  Database db;
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/4,
                                      /*fanout=*/4, /*items_per_page=*/4);

  std::mutex oracle_mutex;
  std::set<std::string> committed_keys;

  constexpr int kThreads = 3;
  constexpr int kTxnsEach = 15;
  std::vector<std::thread> threads;
  uint64_t seed = GetParam();
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(seed * 7919 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        bool abort = rng.NextBool(0.4);
        Status st = db.RunTransaction("F", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(
              txn.Call(enc, Encyclopedia::Insert(key, "data-" + key)));
          if (abort) return Status::Aborted("injected");
          return Status::OK();
        });
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          committed_keys.insert(key);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.locks().LockCount(), 0u);

  // readSeq sees exactly the committed keys.
  Value seq;
  ASSERT_TRUE(db.RunTransaction("check", [&](MethodContext& txn) {
                  return txn.Call(enc, Encyclopedia::ReadSeq(), &seq);
                }).ok());
  std::set<std::string> listed;
  auto fields = SplitFields(seq.AsString());
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    listed.insert(fields[i]);
  }
  EXPECT_EQ(listed, committed_keys);

  // Searches agree.
  for (const std::string& key : committed_keys) {
    Value out;
    ASSERT_TRUE(db.RunTransaction("get", [&](MethodContext& txn) {
                    return txn.Call(enc, Encyclopedia::Search(key), &out);
                  }).ok());
    EXPECT_EQ(out.AsString(), "data-" + key) << key;
  }

  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

// The s7 bench recipe promoted to a correctness gate: transactions lock
// two directories in randomized order on two hot keys (the textbook
// deadlock shape) while injected aborts fire between the lock points.
// Both deadlock policies must end with the committed-only state, zero
// held locks, and a Def 13/16-valid history — whatever mix of deadlock
// victims, wait-die restarts, and injected aborts the schedule hit.
class DeadlockPolicyFaultTest
    : public ::testing::TestWithParam<std::tuple<DeadlockPolicy, uint64_t>> {
};

TEST_P(DeadlockPolicyFaultTest, RandomOrderLocksWithInjectedAborts) {
  const auto [policy, seed] = GetParam();
  DatabaseOptions opts;
  opts.lock_options.deadlock_policy = policy;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(500);
  // Wait-die restarts get fresh (younger) ids, so victims can lose
  // repeatedly under contention; give them room.
  opts.max_retries = 64;
  // Satellite of the recovery work: deterministic, seedable retry
  // backoff instead of per-thread wallclock-seeded jitter.
  opts.backoff_seed = seed;
  Database db(opts);
  RegisterDirectoryMethods(&db);
  ObjectId d1 = CreateDirectory(&db, "D1");
  ObjectId d2 = CreateDirectory(&db, "D2");

  std::mutex oracle_mutex;
  std::set<std::string> committed_markers;
  std::set<std::string> committed_values;

  constexpr int kThreads = 4;
  constexpr int kTxnsEach = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t, seed = seed] {
      Rng rng(seed * 1000 + t);
      for (int i = 0; i < kTxnsEach; ++i) {
        const bool forward = rng.NextBool(0.5);
        const ObjectId first = forward ? d1 : d2;
        const ObjectId second = forward ? d2 : d1;
        const std::string key = "hot" + std::to_string(rng.NextBelow(2));
        const std::string val =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        const bool abort = rng.NextBool(0.3);
        Status st = db.RunTransaction("DP", [&](MethodContext& txn) {
          OODB_RETURN_IF_ERROR(txn.Call(
              first, Invocation("insert", {Value(key), Value(val)})));
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          if (abort) return Status::Aborted("injected");
          OODB_RETURN_IF_ERROR(txn.Call(
              second, Invocation("insert", {Value(key), Value(val)})));
          // A unique marker proves precisely this transaction committed.
          return txn.Call(d1,
                          Invocation("insert", {Value("m_" + val), Value(val)}));
        });
        ASSERT_TRUE(st.ok() || st.IsAborted()) << st.ToString();
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(oracle_mutex);
          committed_markers.insert("m_" + val);
          committed_values.insert(val);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly the committed transactions left their marker; aborted ones
  // were compensated away.
  auto* state = db.StateOf<DirectoryState>(d1);
  std::set<std::string> markers;
  for (const auto& [k, v] : state->entries) {
    (void)v;
    if (k.rfind("m_", 0) == 0) markers.insert(k);
  }
  EXPECT_EQ(markers, committed_markers);

  // The hot keys hold some committed writer's value in both directories.
  for (ObjectId dir : {d1, d2}) {
    auto* entries = db.StateOf<DirectoryState>(dir);
    for (const char* key : {"hot0", "hot1"}) {
      auto it = entries->entries.find(key);
      if (it == entries->entries.end()) continue;
      EXPECT_TRUE(committed_values.count(it->second))
          << key << "=" << it->second << " was never committed";
    }
  }

  EXPECT_EQ(db.locks().LockCount(), 0u);
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, DeadlockPolicyFaultTest,
    ::testing::Combine(::testing::Values(DeadlockPolicy::kDetect,
                                         DeadlockPolicy::kWaitDie),
                       ::testing::Values(uint64_t{11}, uint64_t{29})));

}  // namespace
}  // namespace oodb
