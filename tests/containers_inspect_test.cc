// Structural inspection of the B+ tree, including after concurrent
// stress, plus the commutativity-table rendering.

#include <gtest/gtest.h>

#include <thread>

#include "containers/bptree.h"
#include "containers/bptree_inspect.h"
#include "containers/page_ops.h"
#include "model/commutativity_table.h"

namespace oodb {
namespace {

class InspectTest : public ::testing::Test {
 protected:
  void Build(size_t leaf_capacity, size_t fanout) {
    db_ = std::make_unique<Database>();
    RegisterPageMethods(db_.get());
    BpTree::RegisterMethods(db_.get());
    tree_ = BpTree::Create(db_.get(), "T", leaf_capacity, fanout);
  }

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    return buf;
  }

  void Insert(int i) {
    ASSERT_TRUE(db_->RunTransaction("ins", [&](MethodContext& txn) {
                    return txn.Call(tree_, BpTree::Insert(Key(i), Key(i)));
                  }).ok());
  }

  std::unique_ptr<Database> db_;
  ObjectId tree_;
};

TEST_F(InspectTest, EmptyTreeIsConsistent) {
  Build(4, 4);
  BpTreeInspection result = InspectBpTree(db_.get(), tree_);
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_EQ(result.leaf_count, 1u);
  EXPECT_EQ(result.contents.size(), 0u);
}

TEST_F(InspectTest, SingleLeafContents) {
  Build(8, 4);
  for (int i = 0; i < 5; ++i) Insert(i);
  BpTreeInspection result = InspectBpTree(db_.get(), tree_);
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_EQ(result.leaf_count, 1u);
  EXPECT_EQ(result.contents.size(), 5u);
  EXPECT_EQ(result.contents.at(Key(3)), Key(3));
}

TEST_F(InspectTest, DeepTreeInvariantsHold) {
  Build(4, 4);
  for (int i = 0; i < 150; ++i) Insert(i);
  BpTreeInspection result = InspectBpTree(db_.get(), tree_);
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_EQ(result.contents.size(), 150u);
  EXPECT_GT(result.node_count, 1u);
  EXPECT_GT(result.depth, 2u);
  // Split posting through B-link forwards keeps routing nearly
  // complete: stray chain-only leaves stay rare.
  EXPECT_LE(result.chain_only_leaves, result.leaf_count / 4)
      << result.Summary();
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(result.contents.at(Key(i)), Key(i)) << i;
  }
}

TEST_F(InspectTest, InvariantsHoldAfterConcurrentStress) {
  Build(4, 4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        int id = t * 40 + i;
        (void)db_->RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(tree_, BpTree::Insert(Key(id), Key(id)));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  BpTreeInspection result = InspectBpTree(db_.get(), tree_);
  EXPECT_TRUE(result.ok) << result.Summary();
  EXPECT_EQ(result.contents.size(), 160u);
}

TEST_F(InspectTest, DetectsCorruptedHighKey) {
  Build(4, 4);
  for (int i = 0; i < 20; ++i) Insert(i);
  // Corrupt: find a leaf with a high key and push a key above it into
  // its page, bypassing methods.
  BpTreeInspection before = InspectBpTree(db_.get(), tree_);
  ASSERT_TRUE(before.ok);
  bool corrupted = false;
  for (ObjectId o : db_->ts().Objects()) {
    if (db_->ts().object(o).type != LeafObjectType()) continue;
    auto* leaf = db_->StateOf<LeafState>(o);
    if (leaf->high_key.empty()) continue;
    auto* page = db_->StateOf<PageState>(leaf->page);
    ASSERT_TRUE(page->Write(leaf->high_key + "zzz", "rogue").ok());
    corrupted = true;
    break;
  }
  ASSERT_TRUE(corrupted);
  BpTreeInspection after = InspectBpTree(db_.get(), tree_);
  EXPECT_FALSE(after.ok);
  EXPECT_NE(after.Summary().find("high key"), std::string::npos);
}

TEST(CommutativityTableTest, RendersThetaAndConflict) {
  std::vector<Invocation> samples = {
      Invocation("insert", {Value("DBS"), Value("v")}),
      Invocation("insert", {Value("DBMS"), Value("v")}),
      Invocation("search", {Value("DBS")}),
  };
  std::string table = CommutativityTable(*LeafObjectType(), samples);
  EXPECT_NE(table.find("Leaf commutativity"), std::string::npos);
  EXPECT_NE(table.find("insert(DBS, v)"), std::string::npos);
  // Diagonal: insert(DBS) vs itself conflicts (same key).
  EXPECT_NE(table.find(" x "), std::string::npos);
  // Off-diagonal commutes exist.
  EXPECT_NE(table.find(" 0 "), std::string::npos);
  // 3 sample rows.
  EXPECT_NE(table.find("[3]"), std::string::npos);
}

}  // namespace
}  // namespace oodb
