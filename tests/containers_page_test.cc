#include "storage/page.h"

#include <gtest/gtest.h>

#include "cc/database.h"
#include "containers/codec.h"
#include "containers/page_ops.h"

namespace oodb {
namespace {

TEST(PageStateTest, ReadWriteErase) {
  PageState page(4);
  EXPECT_FALSE(page.Read("a").ok());
  ASSERT_TRUE(page.Write("a", "1").ok());
  ASSERT_TRUE(page.Write("b", "2").ok());
  EXPECT_EQ(*page.Read("a"), "1");
  EXPECT_TRUE(page.Contains("b"));
  EXPECT_EQ(page.size(), 2u);
  ASSERT_TRUE(page.Erase("a").ok());
  EXPECT_FALSE(page.Contains("a"));
  EXPECT_TRUE(page.Erase("a").IsNotFound());
}

TEST(PageStateTest, OverwriteDoesNotGrow) {
  PageState page(2);
  ASSERT_TRUE(page.Write("a", "1").ok());
  ASSERT_TRUE(page.Write("b", "2").ok());
  ASSERT_TRUE(page.Write("a", "3").ok());  // overwrite while full
  EXPECT_EQ(*page.Read("a"), "3");
}

TEST(PageStateTest, CapacityEnforced) {
  PageState page(2);
  ASSERT_TRUE(page.Write("a", "1").ok());
  ASSERT_TRUE(page.Write("b", "2").ok());
  Status st = page.Write("c", "3");
  EXPECT_EQ(st.code(), StatusCode::kCapacity);
  EXPECT_TRUE(page.Full());
}

TEST(PageStateTest, KeysSorted) {
  PageState page(8);
  ASSERT_TRUE(page.Write("c", "3").ok());
  ASSERT_TRUE(page.Write("a", "1").ok());
  ASSERT_TRUE(page.Write("b", "2").ok());
  auto keys = page.Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[2], "c");
}

TEST(PageStateTest, SplitUpperHalf) {
  PageState page(8);
  for (char c = 'a'; c <= 'f'; ++c) {
    ASSERT_TRUE(page.Write(std::string(1, c), "v").ok());
  }
  auto upper = page.SplitUpperHalf();
  EXPECT_EQ(upper.size(), 3u);
  EXPECT_EQ(page.size(), 3u);
  EXPECT_TRUE(page.Contains("a"));
  EXPECT_TRUE(upper.count("f"));
}

class PageMethodsTest : public ::testing::Test {
 protected:
  PageMethodsTest() {
    RegisterPageMethods(&db_);
    page_ = CreatePage(&db_, "P", 4);
  }

  Status Run(const Invocation& inv, Value* out = nullptr) {
    return db_.RunTransaction("T", [&](MethodContext& txn) {
      return txn.Call(page_, inv, out);
    });
  }

  Database db_;
  ObjectId page_;
};

TEST_F(PageMethodsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(Run(Invocation("write", {Value("k"), Value("v")})).ok());
  Value out;
  ASSERT_TRUE(Run(Invocation("read", {Value("k")}), &out).ok());
  EXPECT_EQ(out.AsString(), "v");
}

TEST_F(PageMethodsTest, ReadAbsentIsNone) {
  Value out("sentinel");
  ASSERT_TRUE(Run(Invocation("read", {Value("nope")}), &out).ok());
  EXPECT_TRUE(out.IsNone());
}

TEST_F(PageMethodsTest, EraseReturnsOldValue) {
  ASSERT_TRUE(Run(Invocation("write", {Value("k"), Value("v")})).ok());
  Value out;
  ASSERT_TRUE(Run(Invocation("erase", {Value("k")}), &out).ok());
  EXPECT_EQ(out.AsString(), "v");
  // Erase of absent key is an OK no-op returning none.
  ASSERT_TRUE(Run(Invocation("erase", {Value("k")}), &out).ok());
  EXPECT_TRUE(out.IsNone());
}

TEST_F(PageMethodsTest, ScanReturnsAllEntries) {
  ASSERT_TRUE(Run(Invocation("write", {Value("b"), Value("2")})).ok());
  ASSERT_TRUE(Run(Invocation("write", {Value("a"), Value("1")})).ok());
  Value out;
  ASSERT_TRUE(Run(Invocation("scan"), &out).ok());
  auto fields = SplitFields(out.AsString());
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "1");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "2");
}

TEST_F(PageMethodsTest, RouteLEFindsFloor) {
  ASSERT_TRUE(Run(Invocation("write", {Value(""), Value("low")})).ok());
  ASSERT_TRUE(Run(Invocation("write", {Value("m"), Value("mid")})).ok());
  Value out;
  ASSERT_TRUE(Run(Invocation("routeLE", {Value("a")}), &out).ok());
  EXPECT_EQ(out.AsString(), "low");
  ASSERT_TRUE(Run(Invocation("routeLE", {Value("m")}), &out).ok());
  EXPECT_EQ(out.AsString(), "mid");
  ASSERT_TRUE(Run(Invocation("routeLE", {Value("z")}), &out).ok());
  EXPECT_EQ(out.AsString(), "mid");
}

TEST_F(PageMethodsTest, CountAndContains) {
  Value out;
  ASSERT_TRUE(Run(Invocation("count"), &out).ok());
  EXPECT_EQ(out.AsInt(), 0);
  ASSERT_TRUE(Run(Invocation("write", {Value("k"), Value("v")})).ok());
  ASSERT_TRUE(Run(Invocation("count"), &out).ok());
  EXPECT_EQ(out.AsInt(), 1);
  ASSERT_TRUE(Run(Invocation("contains", {Value("k")}), &out).ok());
  EXPECT_EQ(out.AsInt(), 1);
  ASSERT_TRUE(Run(Invocation("contains", {Value("x")}), &out).ok());
  EXPECT_EQ(out.AsInt(), 0);
}

TEST_F(PageMethodsTest, WriteCompensationRestoresOnAbort) {
  ASSERT_TRUE(Run(Invocation("write", {Value("k"), Value("old")})).ok());
  Status st = db_.RunTransaction("T", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(page_, Invocation("write", {Value("k"), Value("new")})));
    OODB_RETURN_IF_ERROR(
        txn.Call(page_, Invocation("write", {Value("fresh"), Value("x")})));
    return Status::Aborted("undo me");
  });
  EXPECT_TRUE(st.IsAborted());
  auto* page = db_.StateOf<PageState>(page_);
  EXPECT_EQ(*page->Read("k"), "old");
  EXPECT_FALSE(page->Contains("fresh"));
}

TEST_F(PageMethodsTest, CodecRoundTrip) {
  EXPECT_TRUE(SplitFields("").empty());
  EXPECT_EQ(JoinFields({}), "");
  auto fields = SplitFields(JoinFields({"a", "", "c"}));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "c");
  InsertOutcome o;
  o.had_old = true;
  o.old_value = "prev";
  o.split = true;
  o.split_sep = "m";
  o.split_child = 42;
  InsertOutcome d = InsertOutcome::Decode(o.Encode());
  EXPECT_TRUE(d.had_old);
  EXPECT_EQ(d.old_value, "prev");
  EXPECT_TRUE(d.split);
  EXPECT_EQ(d.split_sep, "m");
  EXPECT_EQ(d.split_child, 42u);
}

}  // namespace
}  // namespace oodb
