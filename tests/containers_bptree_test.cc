#include "containers/bptree.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

class BpTreeTest : public ::testing::Test {
 protected:
  void Build(size_t leaf_capacity, size_t fanout) {
    db_ = std::make_unique<Database>();
    RegisterPageMethods(db_.get());
    BpTree::RegisterMethods(db_.get());
    tree_ = BpTree::Create(db_.get(), "T", leaf_capacity, fanout);
  }

  Status Insert(const std::string& k, const std::string& v) {
    return db_->RunTransaction("ins", [&](MethodContext& txn) {
      return txn.Call(tree_, BpTree::Insert(k, v));
    });
  }

  Status Erase(const std::string& k, Value* old = nullptr) {
    return db_->RunTransaction("del", [&](MethodContext& txn) {
      return txn.Call(tree_, BpTree::Erase(k), old);
    });
  }

  Value Search(const std::string& k) {
    Value out;
    Status st = db_->RunTransaction("get", [&](MethodContext& txn) {
      return txn.Call(tree_, BpTree::Search(k), &out);
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    return buf;
  }

  std::unique_ptr<Database> db_;
  ObjectId tree_;
};

TEST_F(BpTreeTest, EmptySearchReturnsNone) {
  Build(4, 4);
  EXPECT_TRUE(Search("nope").IsNone());
}

TEST_F(BpTreeTest, InsertAndSearchSingle) {
  Build(4, 4);
  ASSERT_TRUE(Insert("a", "1").ok());
  EXPECT_EQ(Search("a").AsString(), "1");
  EXPECT_TRUE(Search("b").IsNone());
}

TEST_F(BpTreeTest, OverwriteValue) {
  Build(4, 4);
  ASSERT_TRUE(Insert("a", "1").ok());
  ASSERT_TRUE(Insert("a", "2").ok());
  EXPECT_EQ(Search("a").AsString(), "2");
}

TEST_F(BpTreeTest, LeafSplitPreservesAllKeys) {
  Build(4, 4);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
}

TEST_F(BpTreeTest, MultiLevelGrowth) {
  Build(4, 4);
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
  EXPECT_TRUE(Search("zzz").IsNone());
}

TEST_F(BpTreeTest, ReverseOrderInsertion) {
  Build(4, 4);
  for (int i = 99; i >= 0; --i) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
}

TEST_F(BpTreeTest, RandomOrderInsertion) {
  Build(6, 5);
  std::vector<int> order;
  for (int i = 0; i < 150; ++i) order.push_back(i);
  // Deterministic shuffle.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[(i * 7919) % i]);
  }
  for (int i : order) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  for (int i = 0; i < 150; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
}

TEST_F(BpTreeTest, EraseRemovesKey) {
  Build(4, 4);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(Insert(Key(i), Key(i)).ok());
  Value old;
  ASSERT_TRUE(Erase(Key(7), &old).ok());
  EXPECT_EQ(old.AsString(), Key(7));
  EXPECT_TRUE(Search(Key(7)).IsNone());
  EXPECT_EQ(Search(Key(8)).AsString(), Key(8));
  // Erasing again is a none no-op.
  ASSERT_TRUE(Erase(Key(7), &old).ok());
  EXPECT_TRUE(old.IsNone());
}

TEST_F(BpTreeTest, InsertAbortCompensates) {
  Build(4, 4);
  ASSERT_TRUE(Insert("a", "1").ok());
  Status st = db_->RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(tree_, BpTree::Insert("b", "2")));
    OODB_RETURN_IF_ERROR(txn.Call(tree_, BpTree::Insert("a", "9")));
    return Status::Aborted("rollback");
  });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_TRUE(Search("b").IsNone());
  EXPECT_EQ(Search("a").AsString(), "1");
}

TEST_F(BpTreeTest, AbortAcrossSplitStillCompensates) {
  // The insert that triggered a split is compensated; the split itself
  // (content-neutral) stays.
  Build(4, 4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  Status st = db_->RunTransaction("abort", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(txn.Call(tree_, BpTree::Insert(Key(4), "v")));
    return Status::Aborted("rollback");
  });
  EXPECT_TRUE(st.IsAborted());
  EXPECT_TRUE(Search(Key(4)).IsNone());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(Search(Key(i)).AsString(), "v");
}

TEST_F(BpTreeTest, SequentialHistoryValidates) {
  Build(4, 4);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(Insert(Key(i), "v").ok());
  ValidationReport report = Validator::Validate(&db_->ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
  // Splits call split() on the leaf/node being split from within the
  // insert: the Def 5 extension must have had work to do.
  EXPECT_GE(report.extension.cycles_broken, 1u);
}

TEST_F(BpTreeTest, ConcurrentDisjointInserts) {
  Build(16, 16);
  constexpr int kThreads = 4;
  constexpr int kEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        int id = t * kEach + i;
        Status st = db_->RunTransaction("ins", [&](MethodContext& txn) {
          return txn.Call(tree_, BpTree::Insert(Key(id), Key(id)));
        });
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int i = 0; i < kThreads * kEach; ++i) {
    EXPECT_EQ(Search(Key(i)).AsString(), Key(i)) << i;
  }
  EXPECT_EQ(db_->locks().LockCount(), 0u);
}

TEST_F(BpTreeTest, ConcurrentMixedWorkloadKeepsTreeConsistent) {
  Build(8, 8);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(Insert(Key(i), "base").ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        int id = (i * 13 + t * 7) % 80;
        if (id < 40 && i % 3 == 0) {
          (void)db_->RunTransaction("get", [&](MethodContext& txn) {
            Value out;
            return txn.Call(tree_, BpTree::Search(Key(id)), &out);
          });
        } else {
          (void)db_->RunTransaction("ins", [&](MethodContext& txn) {
            return txn.Call(tree_,
                            BpTree::Insert(Key(id), "t" + std::to_string(t)));
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every key 0..79 that was ever inserted must be findable.
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(Search(Key(i)).IsNone()) << i;
  }
  EXPECT_EQ(db_->locks().LockCount(), 0u);
}

}  // namespace
}  // namespace oodb
