// Golden-format test: a hand-pinned v1 history dump must keep loading
// and validating identically — guards the history_io format and the
// dependency engine's verdicts against silent drift.

#include <gtest/gtest.h>

#include "schedule/history_io.h"
#include "schedule/validator.h"
#include "paper_types.h"

namespace oodb {
namespace {

const ObjectType* GoldenResolver(const std::string& name) {
  if (name == "Page") return testing::PageType();
  if (name == "Leaf") return testing::LeafType();
  if (name == "BpTree") return testing::BpTreeType();
  return nullptr;
}

// Two transactions insert different keys through one leaf sharing a
// page (the Example 1 commuting scenario), serial page order.
constexpr const char* kCommutingGolden =
    "oodb-history v1\n"
    "object 1 BpTree Tree\n"
    "object 2 Leaf Leaf11\n"
    "object 3 Page Page4712\n"
    "action 0 0 - 0 0 4 T1 0 T1\n"
    "action 1 1 0 0 0 3 insert 1 sDBS T1.1\n"
    "action 2 2 1 0 0 2 insert 1 sDBS T1.1.1\n"
    "action 3 3 2 0 1 1 write 2 sDBS sv1 T1.1.1.1\n"
    "action 4 0 - 0 0 8 T2 0 T2\n"
    "action 5 1 4 0 0 7 insert 1 sDBMS T2.1\n"
    "action 6 2 5 0 0 6 insert 1 sDBMS T2.1.1\n"
    "action 7 3 6 0 2 5 write 2 sDBMS sv2 T2.1.1.1\n";

// Same, but the second transaction touches the SAME key: the
// dependency must reach the top level.
constexpr const char* kConflictingGolden =
    "oodb-history v1\n"
    "object 1 BpTree Tree\n"
    "object 2 Leaf Leaf11\n"
    "object 3 Page Page4712\n"
    "action 0 0 - 0 0 4 T1 0 T1\n"
    "action 1 1 0 0 0 3 insert 1 sDBS T1.1\n"
    "action 2 2 1 0 0 2 insert 1 sDBS T1.1.1\n"
    "action 3 3 2 0 1 1 write 2 sDBS sv1 T1.1.1.1\n"
    "action 4 0 - 0 0 8 T2 0 T2\n"
    "action 5 1 4 0 0 7 search 1 sDBS T2.1\n"
    "action 6 2 5 0 0 6 search 1 sDBS T2.1.1\n"
    "action 7 3 6 0 2 5 read 1 sDBS T2.1.1.1\n";

TEST(GoldenHistoryTest, CommutingScenarioVerdictPinned) {
  auto loaded = HistoryIo::Load(kCommutingGolden, GoldenResolver);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ValidationReport report = Validator::Validate(loaded->get());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conventionally_serializable);
  // Exactly one page-level conflict, inherited once, stopping at the
  // commuting leaf inserts; nothing reaches the top.
  EXPECT_EQ(report.stats.primitive_conflicts, 1u);
  EXPECT_EQ(report.stats.inherited_txn_deps, 1u);
  EXPECT_EQ(report.stats.stopped_inheritance, 1u);
  ASSERT_EQ(report.serialization_order.size(), 2u);
}

TEST(GoldenHistoryTest, ConflictingScenarioVerdictPinned) {
  auto loaded = HistoryIo::Load(kConflictingGolden, GoldenResolver);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  TransactionSystem& ts = **loaded;
  ValidationReport report = Validator::Validate(&ts);
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  // write -> read conflict inherits through leaf (same key) and tree
  // (same key) to the top: T1 before T2.
  EXPECT_EQ(report.stats.primitive_conflicts, 1u);
  EXPECT_EQ(report.stats.inherited_txn_deps, 3u);
  EXPECT_EQ(report.stats.stopped_inheritance, 0u);
  ASSERT_EQ(report.serialization_order.size(), 2u);
  EXPECT_EQ(ts.action(report.serialization_order[0]).label, "T1");
  EXPECT_EQ(ts.action(report.serialization_order[1]).label, "T2");
}

TEST(GoldenHistoryTest, DumpOfLoadedMatchesStructure) {
  auto loaded = HistoryIo::Load(kCommutingGolden, GoldenResolver);
  ASSERT_TRUE(loaded.ok());
  Result<std::string> redump = HistoryIo::Dump(**loaded);
  ASSERT_TRUE(redump.ok());
  auto reloaded = HistoryIo::Load(*redump, GoldenResolver);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ((*reloaded)->action_count(), (*loaded)->action_count());
  EXPECT_EQ((*reloaded)->object_count(), (*loaded)->object_count());
}

}  // namespace
}  // namespace oodb
