// Randomized cross-checks of the digraph algorithms against brute-force
// references.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/digraph.h"
#include "util/random.h"

namespace oodb {
namespace {

struct RandomGraph {
  Digraph g;
  size_t n;
  std::vector<std::pair<uint64_t, uint64_t>> edges;
};

RandomGraph Build(uint64_t seed) {
  RandomGraph out;
  Rng rng(seed);
  out.n = 3 + rng.NextBelow(12);
  size_t num_edges = rng.NextBelow(out.n * 2 + 1);
  for (size_t i = 0; i < out.n; ++i) out.g.AddNode(i);
  for (size_t e = 0; e < num_edges; ++e) {
    uint64_t a = rng.NextBelow(out.n);
    uint64_t b = rng.NextBelow(out.n);
    out.g.AddEdge(a, b);
    out.edges.push_back({a, b});
  }
  return out;
}

/// Brute-force reachability via repeated relaxation.
std::vector<std::vector<bool>> BruteClosure(const RandomGraph& rg) {
  std::vector<std::vector<bool>> reach(rg.n, std::vector<bool>(rg.n));
  for (const auto& [a, b] : rg.edges) reach[a][b] = true;
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < rg.n; ++i) {
      for (size_t j = 0; j < rg.n; ++j) {
        if (!reach[i][j]) continue;
        for (size_t k = 0; k < rg.n; ++k) {
          if (reach[j][k] && !reach[i][k]) {
            reach[i][k] = true;
            changed = true;
          }
        }
      }
    }
  }
  return reach;
}

class DigraphProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DigraphProperty, ReachesMatchesBruteForce) {
  RandomGraph rg = Build(GetParam());
  auto reach = BruteClosure(rg);
  for (size_t i = 0; i < rg.n; ++i) {
    for (size_t j = 0; j < rg.n; ++j) {
      EXPECT_EQ(rg.g.Reaches(i, j), reach[i][j]) << i << "->" << j;
    }
  }
}

TEST_P(DigraphProperty, TransitiveClosureMatchesBruteForce) {
  RandomGraph rg = Build(GetParam());
  auto reach = BruteClosure(rg);
  Digraph closure = rg.g.TransitiveClosure();
  for (size_t i = 0; i < rg.n; ++i) {
    for (size_t j = 0; j < rg.n; ++j) {
      EXPECT_EQ(closure.HasEdge(i, j), reach[i][j]) << i << "->" << j;
    }
  }
}

TEST_P(DigraphProperty, CycleIffNoTopologicalOrder) {
  RandomGraph rg = Build(GetParam());
  auto reach = BruteClosure(rg);
  bool has_cycle = false;
  for (size_t i = 0; i < rg.n; ++i) has_cycle |= reach[i][i];
  EXPECT_EQ(rg.g.HasCycle(), has_cycle);
  EXPECT_EQ(rg.g.TopologicalOrder().has_value(), !has_cycle);
}

TEST_P(DigraphProperty, FoundCycleIsRealCycle) {
  RandomGraph rg = Build(GetParam());
  auto cycle = rg.g.FindCycle();
  if (!cycle.has_value()) return;
  ASSERT_GE(cycle->size(), 2u);
  EXPECT_EQ(cycle->front(), cycle->back());
  for (size_t i = 0; i + 1 < cycle->size(); ++i) {
    EXPECT_TRUE(rg.g.HasEdge((*cycle)[i], (*cycle)[i + 1]))
        << (*cycle)[i] << "->" << (*cycle)[i + 1];
  }
}

TEST_P(DigraphProperty, TopologicalOrderRespectsAllEdges) {
  RandomGraph rg = Build(GetParam());
  auto topo = rg.g.TopologicalOrder();
  if (!topo.has_value()) return;
  std::vector<size_t> pos(rg.n);
  for (size_t i = 0; i < topo->size(); ++i) pos[(*topo)[i]] = i;
  for (const auto& [a, b] : rg.edges) {
    if (a == b) continue;
    EXPECT_LT(pos[a], pos[b]) << a << "->" << b;
  }
}

TEST_P(DigraphProperty, SccPartitionConsistentWithMutualReachability) {
  RandomGraph rg = Build(GetParam());
  auto reach = BruteClosure(rg);
  auto sccs = rg.g.StronglyConnectedComponents();
  // Every node appears exactly once.
  std::vector<int> component(rg.n, -1);
  for (size_t c = 0; c < sccs.size(); ++c) {
    for (auto n : sccs[c]) {
      ASSERT_EQ(component[n], -1);
      component[n] = int(c);
    }
  }
  for (size_t i = 0; i < rg.n; ++i) ASSERT_NE(component[i], -1);
  // Same component iff mutually reachable (or identical).
  for (size_t i = 0; i < rg.n; ++i) {
    for (size_t j = 0; j < rg.n; ++j) {
      if (i == j) continue;
      bool mutual = reach[i][j] && reach[j][i];
      EXPECT_EQ(component[i] == component[j], mutual) << i << "," << j;
    }
  }
}

/// Brute-force length (in edges) of the shortest cycle through `start`:
/// BFS distance start -> start, or 0 when none.
size_t BruteShortestThrough(const RandomGraph& rg, uint64_t start) {
  std::vector<size_t> dist(rg.n, 0);
  std::vector<uint64_t> frontier{start};
  for (size_t depth = 1; !frontier.empty(); ++depth) {
    std::vector<uint64_t> next;
    for (uint64_t cur : frontier) {
      for (const auto& [a, b] : rg.edges) {
        if (a != cur) continue;
        if (b == start) return depth;
        if (dist[b] == 0) {
          dist[b] = depth;
          next.push_back(b);
        }
      }
    }
    frontier = std::move(next);
  }
  return 0;
}

TEST_P(DigraphProperty, ShortestCycleThroughIsValidAndMinimal) {
  RandomGraph rg = Build(GetParam());
  for (size_t i = 0; i < rg.n; ++i) {
    size_t brute = BruteShortestThrough(rg, i);
    auto cycle = rg.g.FindShortestCycleThrough(i);
    ASSERT_EQ(cycle.has_value(), brute != 0) << "node " << i;
    if (!cycle) continue;
    EXPECT_EQ(cycle->size() - 1, brute) << "node " << i;
    EXPECT_EQ(cycle->front(), i);
    EXPECT_EQ(cycle->back(), i);
    for (size_t k = 0; k + 1 < cycle->size(); ++k) {
      EXPECT_TRUE(rg.g.HasEdge((*cycle)[k], (*cycle)[k + 1]))
          << (*cycle)[k] << "->" << (*cycle)[k + 1];
    }
  }
}

TEST_P(DigraphProperty, ShortestCycleIsValidAndGloballyMinimal) {
  RandomGraph rg = Build(GetParam());
  size_t best = 0;
  for (size_t i = 0; i < rg.n; ++i) {
    size_t len = BruteShortestThrough(rg, i);
    if (len != 0 && (best == 0 || len < best)) best = len;
  }
  auto cycle = rg.g.FindShortestCycle();
  ASSERT_EQ(cycle.has_value(), best != 0);
  EXPECT_EQ(rg.g.HasCycle(), cycle.has_value());
  if (!cycle) return;
  EXPECT_EQ(cycle->size() - 1, best);
  EXPECT_EQ(cycle->front(), cycle->back());
  for (size_t k = 0; k + 1 < cycle->size(); ++k) {
    EXPECT_TRUE(rg.g.HasEdge((*cycle)[k], (*cycle)[k + 1]));
  }
}

TEST_P(DigraphProperty, ShortestCycleIsDeterministic) {
  RandomGraph a = Build(GetParam());
  RandomGraph b = Build(GetParam());
  EXPECT_EQ(a.g.FindShortestCycle(), b.g.FindShortestCycle());
  for (size_t i = 0; i < a.n; ++i) {
    EXPECT_EQ(a.g.FindShortestCycleThrough(i),
              b.g.FindShortestCycleThrough(i));
  }
}

TEST_P(DigraphProperty, ShortestCycleWithMatchesMaterializedUnion) {
  // Split the edges across two graphs; the overlay search must agree
  // with FindShortestCycle on the materialized union, byte for byte
  // (same insertion order => same tie-breaks).
  RandomGraph rg = Build(GetParam());
  Digraph base, extra, merged;
  for (size_t i = 0; i < rg.n; ++i) {
    base.AddNode(i);
    merged.AddNode(i);
  }
  for (size_t e = 0; e < rg.edges.size(); ++e) {
    (e % 2 == 0 ? base : extra).AddEdge(rg.edges[e].first,
                                        rg.edges[e].second);
  }
  merged.UnionWith(base);
  merged.UnionWith(extra);
  auto overlay = base.FindShortestCycleWith(extra);
  auto direct = merged.FindShortestCycle();
  ASSERT_EQ(overlay.has_value(), direct.has_value());
  if (!overlay) return;
  EXPECT_EQ(overlay->size(), direct->size());
  for (size_t k = 0; k + 1 < overlay->size(); ++k) {
    EXPECT_TRUE(base.HasEdge((*overlay)[k], (*overlay)[k + 1]) ||
                extra.HasEdge((*overlay)[k], (*overlay)[k + 1]));
  }
}

TEST(DigraphUnionDeterminism, UnionWithPreservesInsertionOrder) {
  // The regression behind nondeterministic rendered cycles: UnionWith
  // used to iterate the other graph's adjacency hash map. The merged
  // graph must list the other graph's nodes and edges in its insertion
  // order, so ToString (and every cycle search) is byte-stable.
  Digraph a, b;
  a.AddEdge(5, 3);
  b.AddEdge(9, 7);
  b.AddEdge(2, 9);
  b.AddEdge(7, 2);
  a.UnionWith(b);
  EXPECT_EQ(a.Nodes(), (std::vector<Digraph::NodeId>{5, 3, 9, 7, 2}));
  EXPECT_EQ(a.ToString(), "5->3, 9->7, 7->2, 2->9");
  auto cycle = a.FindShortestCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(*cycle, (std::vector<Digraph::NodeId>{9, 7, 2, 9}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigraphProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{60}));

}  // namespace
}  // namespace oodb
