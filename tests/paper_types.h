// Shared object types used by tests: the commutativity specifications of
// the paper's encyclopedia example (Fig 2) — pages, B+-tree nodes/leaves,
// items, the linked list, and the encyclopedia object itself.

#pragma once

#include <memory>
#include <set>

#include "model/object_type.h"

namespace oodb {
namespace testing {

/// Zero layer (Def 3 footnote: "a common object type which methods call
/// no other actions: the page"): only read/read commutes.
inline const ObjectType* PageType() {
  static const ObjectType* type = [] {
    return new ObjectType("Page",
                          std::make_unique<ReadWriteCommutativity>(
                              std::set<std::string>{"read"}),
                          /*primitive=*/true);
  }();
  return type;
}

/// B+-tree leaves and inner nodes: keyed operations commute on distinct
/// keys (Example 1); structural rearrangement conflicts with everything.
inline const ObjectType* LeafType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "search", diff);
    spec->SetPredicate("insert", "erase", diff);
    spec->SetPredicate("erase", "erase", diff);
    spec->SetPredicate("erase", "search", diff);
    spec->SetCommutes("search", "search");
    // rearrange/split left unregistered: conflicts with everything.
    return new ObjectType("Leaf", std::move(spec));
  }();
  return type;
}

/// The B+ tree as a whole: same keyed semantics at the access-path root.
inline const ObjectType* BpTreeType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "search", diff);
    spec->SetPredicate("insert", "erase", diff);
    spec->SetPredicate("erase", "erase", diff);
    spec->SetPredicate("erase", "search", diff);
    spec->SetCommutes("search", "search");
    return new ObjectType("BpTree", std::move(spec));
  }();
  return type;
}

/// Items: read/read commutes, change conflicts with read and change.
inline const ObjectType* ItemType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<MatrixCommutativity>();
    spec->SetCommutes("read", "read");
    return new ObjectType("Item", std::move(spec));
  }();
  return type;
}

/// The linked item list: appends of different items commute; the
/// sequential read conflicts with structural changes (phantoms).
inline const ObjectType* LinkedListType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    spec->SetPredicate("append", "append",
                       PredicateCommutativity::DifferentParam(0));
    spec->SetCommutes("readSeq", "readSeq");
    // append vs readSeq unregistered -> conflict.
    return new ObjectType("LinkedList", std::move(spec));
  }();
  return type;
}

/// The encyclopedia: keyed item operations commute on distinct keys,
/// readSeq conflicts with every mutation.
inline const ObjectType* EncType() {
  static const ObjectType* type = [] {
    auto spec = std::make_unique<PredicateCommutativity>();
    auto diff = PredicateCommutativity::DifferentParam(0);
    spec->SetPredicate("insert", "insert", diff);
    spec->SetPredicate("insert", "search", diff);
    spec->SetPredicate("insert", "change", diff);
    spec->SetPredicate("change", "change", diff);
    spec->SetPredicate("change", "search", diff);
    spec->SetCommutes("search", "search");
    spec->SetCommutes("readSeq", "readSeq");
    spec->SetCommutes("readSeq", "search");
    // insert/change vs readSeq unregistered -> conflict.
    return new ObjectType("Enc", std::move(spec));
  }();
  return type;
}

}  // namespace testing
}  // namespace oodb
