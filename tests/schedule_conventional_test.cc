#include "schedule/conventional.h"

#include <gtest/gtest.h>

#include "paper_types.h"

namespace oodb {
namespace {

using testing::LeafType;
using testing::PageType;

void Stamp(TransactionSystem* ts, ActionId a) {
  ts->SetTimestamp(a, ts->NextTimestamp());
}

TEST(ConventionalTest, EmptyHistorySerializable) {
  TransactionSystem ts;
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 0u);
}

TEST(ConventionalTest, ReadsDoNotConflict) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId r1 = ts.Call(t1, page, Invocation("read"));
  ActionId r2 = ts.Call(t2, page, Invocation("read"));
  Stamp(&ts, r1);
  Stamp(&ts, r2);
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 0u);
}

TEST(ConventionalTest, WriteWriteConflictOrdered) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId w1 = ts.Call(t1, page, Invocation("write"));
  ActionId w2 = ts.Call(t2, page, Invocation("write"));
  Stamp(&ts, w1);
  Stamp(&ts, w2);
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 1u);
  EXPECT_TRUE(r.conflict_graph.HasEdge(t1.value, t2.value));
  EXPECT_FALSE(r.conflict_graph.HasEdge(t2.value, t1.value));
}

TEST(ConventionalTest, ClassicNonSerializableInterleaving) {
  // T1 and T2 write pages A and B in opposite orders.
  TransactionSystem ts;
  ObjectId pa = ts.AddObject(PageType(), "A");
  ObjectId pb = ts.AddObject(PageType(), "B");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a1 = ts.Call(t1, pa, Invocation("write"));
  ActionId a2 = ts.Call(t2, pa, Invocation("write"));
  ActionId b2 = ts.Call(t2, pb, Invocation("write"));
  ActionId b1 = ts.Call(t1, pb, Invocation("write"));
  Stamp(&ts, a1);
  Stamp(&ts, a2);
  Stamp(&ts, b2);
  Stamp(&ts, b1);
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_FALSE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 2u);
}

TEST(ConventionalTest, SameTransactionConflictsIgnored) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId w1 = ts.Call(t1, page, Invocation("write"));
  ActionId w2 = ts.Call(t1, page, Invocation("write"));
  Stamp(&ts, w1);
  Stamp(&ts, w2);
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 0u);
}

TEST(ConventionalTest, CompositeActionsIgnored) {
  // Only the primitive layer counts: leaf-level inserts are invisible to
  // the conventional checker.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "L");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ts.Call(t1, leaf, Invocation("insert", {Value("k")}));
  ts.Call(t2, leaf, Invocation("insert", {Value("k")}));
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_TRUE(r.serializable);
  EXPECT_EQ(r.conflicting_pairs, 0u);
}

TEST(ConventionalTest, UnstampedPrimitivesIgnored) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ts.Call(t1, page, Invocation("write"));
  ActionId w2 = ts.Call(t2, page, Invocation("write"));
  Stamp(&ts, w2);
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_EQ(r.conflicting_pairs, 0u);
}

TEST(ConventionalTest, ThreeTransactionCycle) {
  TransactionSystem ts;
  ObjectId pa = ts.AddObject(PageType(), "A");
  ObjectId pb = ts.AddObject(PageType(), "B");
  ObjectId pc = ts.AddObject(PageType(), "C");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId t3 = ts.BeginTopLevel("T3");
  auto w = [&](ActionId t, ObjectId p) {
    ActionId a = ts.Call(t, p, Invocation("write"));
    Stamp(&ts, a);
  };
  w(t1, pa);
  w(t2, pa);  // T1 -> T2
  w(t2, pb);
  w(t3, pb);  // T2 -> T3
  w(t3, pc);
  w(t1, pc);  // T3 -> T1
  ConventionalResult r = ConventionalChecker::Check(ts);
  EXPECT_FALSE(r.serializable);
}

}  // namespace
}  // namespace oodb
