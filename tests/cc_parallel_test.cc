// Intra-transaction parallelism (Def 2's partial precedence relation,
// Def 9's processes) exercised through the runtime: one transaction
// fans out into concurrent child actions.

#include <gtest/gtest.h>

#include <set>

#include "containers/bptree.h"
#include "containers/directory.h"
#include "containers/escrow.h"
#include "containers/page_ops.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

TEST(ParallelCallTest, ResultsArriveInCallOrder) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("seed", [&](MethodContext& txn) {
                  OODB_RETURN_IF_ERROR(txn.Call(
                      dir, Invocation("insert", {Value("a"), Value("1")})));
                  return txn.Call(
                      dir, Invocation("insert", {Value("b"), Value("2")}));
                }).ok());
  std::vector<Value> results;
  ASSERT_TRUE(db.RunTransaction("par", [&](MethodContext& txn) {
                  return txn.CallParallel(
                      {{dir, Invocation("lookup", {Value("a")})},
                       {dir, Invocation("lookup", {Value("b")})},
                       {dir, Invocation("lookup", {Value("nope")})}},
                      &results);
                }).ok());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].AsString(), "1");
  EXPECT_EQ(results[1].AsString(), "2");
  EXPECT_TRUE(results[2].IsNone());
}

TEST(ParallelCallTest, BranchesGetDistinctProcesses) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("par", [&](MethodContext& txn) {
                  return txn.CallParallel(
                      {{dir, Invocation("insert", {Value("x"), Value("1")})},
                       {dir, Invocation("insert", {Value("y"), Value("2")})}});
                }).ok());
  ActionId top = db.ts().TopLevel().back();
  const auto& children = db.ts().action(top).children;
  ASSERT_EQ(children.size(), 2u);
  std::set<uint32_t> processes;
  for (ActionId c : children) {
    processes.insert(db.ts().action(c).process);
    EXPECT_NE(db.ts().action(c).process, 0u);
  }
  EXPECT_EQ(processes.size(), 2u);
  // No precedence between parallel siblings.
  EXPECT_FALSE(db.ts().MustPrecede(children[0], children[1]));
  EXPECT_FALSE(db.ts().MustPrecede(children[1], children[0]));
}

TEST(ParallelCallTest, ConflictingBranchesSerializeViaPassUp) {
  // Both branches insert the SAME key: Def 9 says different processes
  // genuinely conflict. The lock manager serializes them (intra-
  // transaction waits resolve by pass-up, not deadlock), and the
  // history stays valid.
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Status st = db.RunTransaction("par", [&](MethodContext& txn) {
    return txn.CallParallel(
        {{dir, Invocation("insert", {Value("k"), Value("v1")})},
         {dir, Invocation("insert", {Value("k"), Value("v2")})}});
  });
  ASSERT_TRUE(st.ok()) << st;
  auto* state = db.StateOf<DirectoryState>(dir);
  std::string v = state->entries.at("k");
  EXPECT_TRUE(v == "v1" || v == "v2");
  EXPECT_EQ(db.counters().deadlocks.load(), 0u);
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST(ParallelCallTest, FailedBranchAbortsAndCompensates) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Status st = db.RunTransaction("par", [&](MethodContext& txn) {
    return txn.CallParallel(
        {{dir, Invocation("insert", {Value("good"), Value("1")})},
         {dir, Invocation("update", {Value("absent"), Value("2")})}});
  });
  EXPECT_TRUE(st.IsNotFound());
  // The successful branch was compensated by the transaction abort.
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.count("good"), 0u);
  EXPECT_EQ(db.locks().LockCount(), 0u);
}

TEST(ParallelCallTest, ParallelBranchesOnBpTree) {
  Database db;
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  ObjectId tree = BpTree::Create(&db, "T", 4, 4);
  ASSERT_TRUE(db.RunTransaction("par", [&](MethodContext& txn) {
                  std::vector<MethodContext::ParallelCall> calls;
                  for (int i = 0; i < 8; ++i) {
                    calls.push_back(
                        {tree, BpTree::Insert("k" + std::to_string(i),
                                              "v")});
                  }
                  return txn.CallParallel(calls);
                }).ok());
  for (int i = 0; i < 8; ++i) {
    Value out;
    ASSERT_TRUE(db.RunTransaction("get", [&](MethodContext& txn) {
                    return txn.Call(
                        tree, BpTree::Search("k" + std::to_string(i)), &out);
                  }).ok());
    EXPECT_EQ(out.AsString(), "v") << i;
  }
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

TEST(ParallelCallTest, ParallelAuditFanOut) {
  // A read-only parallel fan-out over escrow accounts.
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  std::vector<ObjectId> accounts;
  for (int i = 0; i < 6; ++i) {
    accounts.push_back(CreateAccount(&db, EscrowAccountType(),
                                     "A" + std::to_string(i), 100 + i));
  }
  std::vector<Value> balances;
  ASSERT_TRUE(db.RunTransaction("audit", [&](MethodContext& txn) {
                  std::vector<MethodContext::ParallelCall> calls;
                  for (ObjectId a : accounts) {
                    calls.push_back({a, Invocation("balance")});
                  }
                  return txn.CallParallel(calls, &balances);
                }).ok());
  int64_t total = 0;
  for (const Value& b : balances) total += b.AsInt();
  EXPECT_EQ(total, 100 * 6 + 15);
}

TEST(ParallelCallTest, EmptyCallSetIsOk) {
  Database db;
  ASSERT_TRUE(db.RunTransaction("par", [&](MethodContext& txn) {
                  std::vector<Value> out;
                  return txn.CallParallel({}, &out);
                }).ok());
}

}  // namespace
}  // namespace oodb
