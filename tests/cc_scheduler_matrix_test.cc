// The scheduler matrix: every concurrency-control discipline, run
// against the same mixed encyclopedia workload (inserts, changes,
// searches, erases, readSeq) under concurrency, must
//   (a) keep the application state consistent with a committed-only
//       oracle,
//   (b) unwind every lock, and
//   (c) leave an oo-serializable, conform history.
// Flat 2PL must additionally leave a *conventionally* serializable
// history (its locks are exactly the page-level R/W discipline).

#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "apps/encyclopedia.h"
#include "containers/codec.h"
#include "schedule/validator.h"
#include "util/random.h"

namespace oodb {
namespace {

struct MatrixParam {
  SchedulerKind scheduler;
  DeadlockPolicy policy;
  uint64_t seed;
};

class SchedulerMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(SchedulerMatrixTest, MixedWorkloadConsistentAndSerializable) {
  const MatrixParam& param = GetParam();
  DatabaseOptions opts;
  opts.scheduler = param.scheduler;
  opts.lock_options.deadlock_policy = param.policy;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(1000);
  opts.max_retries = 32;
  Database db(opts);
  Encyclopedia::RegisterMethods(&db);
  ObjectId enc = Encyclopedia::Create(&db, "Enc", /*leaf_capacity=*/4,
                                      /*fanout=*/4, /*items_per_page=*/4);

  std::mutex oracle_mutex;
  std::set<std::string> oracle;  // committed keys

  constexpr int kThreads = 3;
  constexpr int kOpsEach = 14;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(param.seed * 977 + t);
      for (int i = 0; i < kOpsEach; ++i) {
        std::string key =
            "t" + std::to_string(t) + "_" + std::to_string(i % 8);
        double dice = rng.NextDouble();
        if (dice < 0.45) {
          Status st = db.RunTransaction("ins", [&](MethodContext& txn) {
            return txn.Call(enc, Encyclopedia::Insert(key, "d" + key));
          });
          if (st.ok()) {
            std::lock_guard<std::mutex> lock(oracle_mutex);
            oracle.insert(key);
          }
        } else if (dice < 0.6) {
          Status st = db.RunTransaction("del", [&](MethodContext& txn) {
            return txn.Call(enc, Encyclopedia::Erase(key));
          });
          if (st.ok()) {
            std::lock_guard<std::mutex> lock(oracle_mutex);
            oracle.erase(key);
          }
        } else if (dice < 0.8) {
          (void)db.RunTransaction("chg", [&](MethodContext& txn) {
            Status st = txn.Call(enc, Encyclopedia::Change(key, "c" + key));
            // change of an absent key is a legitimate NotFound abort.
            return st.IsNotFound() ? Status::Aborted("absent") : st;
          });
        } else if (dice < 0.95) {
          Value out;
          (void)db.RunTransaction("get", [&](MethodContext& txn) {
            return txn.Call(enc, Encyclopedia::Search(key), &out);
          });
        } else {
          Value out;
          (void)db.RunTransaction("seq", [&](MethodContext& txn) {
            return txn.Call(enc, Encyclopedia::ReadSeq(), &out);
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // (b) every lock unwound.
  EXPECT_EQ(db.locks().LockCount(), 0u);

  // (a) state equals the committed-only oracle (keys only: changes
  // race benignly with each other on the value).
  Value seq;
  ASSERT_TRUE(db.RunTransaction("check", [&](MethodContext& txn) {
                  return txn.Call(enc, Encyclopedia::ReadSeq(), &seq);
                }).ok());
  std::set<std::string> listed;
  auto fields = SplitFields(seq.AsString());
  for (size_t i = 0; i + 1 < fields.size(); i += 2) {
    listed.insert(fields[i]);
  }
  EXPECT_EQ(listed, oracle) << SchedulerKindName(param.scheduler);

  // (c) serializability of the full recorded history.
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable)
      << SchedulerKindName(param.scheduler) << " seed " << param.seed
      << "\n" << report.Summary();
  EXPECT_TRUE(report.conform);
  if (param.scheduler == SchedulerKind::kFlat2PL) {
    EXPECT_TRUE(report.conventionally_serializable);
  }
}

std::vector<MatrixParam> MatrixParams() {
  std::vector<MatrixParam> params;
  for (SchedulerKind kind :
       {SchedulerKind::kOpenNested, SchedulerKind::kClosedNested,
        SchedulerKind::kFlat2PL, SchedulerKind::kObjectExclusive}) {
    for (uint64_t seed : {1, 2, 3}) {
      params.push_back({kind, DeadlockPolicy::kDetect, seed});
    }
  }
  // Wait-die sampled on the paper's scheduler.
  for (uint64_t seed : {4, 5}) {
    params.push_back(
        {SchedulerKind::kOpenNested, DeadlockPolicy::kWaitDie, seed});
  }
  return params;
}

std::string MatrixName(const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string name = SchedulerKindName(info.param.scheduler);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_" + DeadlockPolicyName(info.param.policy)[0] +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerMatrixTest,
                         ::testing::ValuesIn(MatrixParams()), MatrixName);

}  // namespace
}  // namespace oodb
