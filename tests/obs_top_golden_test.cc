// Golden oodb_top contract: rendering a committed flight-recorder
// series (recorded from the s11 smoke cell) is byte-stable — both the
// human screen and the machine report. The report must name a dominant
// bottleneck phase, and its per-phase sums must cover the measured
// end-to-end latency within 5% (in practice exactly, because execute is
// the residual).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/top.h"

namespace oodb {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(OODB_GOLDEN_DIR) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

SeriesData LoadGoldenSeries() {
  Result<SeriesData> series =
      ParseSeries(ReadFile(GoldenPath("top_series.jsonl")));
  EXPECT_TRUE(series.ok()) << series.status().ToString();
  return series.ValueOr(SeriesData{});
}

TEST(TopGoldenTest, GoldenSeriesParses) {
  const SeriesData series = LoadGoldenSeries();
  EXPECT_EQ(series.version, 1u);
  EXPECT_EQ(series.tag, "s11:smoke");
  EXPECT_GT(series.samples.size(), 10u);
}

TEST(TopGoldenTest, ReportIsByteStable) {
  const SeriesData series = LoadGoldenSeries();
  EXPECT_EQ(RenderReport(series, TopOptions{}),
            ReadFile(GoldenPath("top_report.json")));
}

TEST(TopGoldenTest, ScreenIsByteStable) {
  const SeriesData series = LoadGoldenSeries();
  EXPECT_EQ(RenderScreen(series, TopOptions{}),
            ReadFile(GoldenPath("top_screen.txt")));
}

/// Pulls the integer after `"key": ` out of the flat report JSON.
uint64_t ReportNumber(const std::string& report, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = report.find(needle);
  EXPECT_NE(pos, std::string::npos) << key;
  if (pos == std::string::npos) return 0;
  return std::strtoull(report.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(TopGoldenTest, ReportNamesDominantPhaseCoveringLatency) {
  const SeriesData series = LoadGoldenSeries();
  const std::string report = RenderReport(series, TopOptions{});

  // The acceptance contract: a dominant phase is named...
  const size_t pos = report.find("\"dominant_phase\": \"");
  ASSERT_NE(pos, std::string::npos);
  const size_t start = pos + std::string("\"dominant_phase\": \"").size();
  const std::string dominant =
      report.substr(start, report.find('"', start) - start);
  EXPECT_FALSE(dominant.empty());

  // ...and the six phase sums cover measured end-to-end latency within
  // 5%.
  const uint64_t phase_sum = ReportNumber(report, "phase_sum_ns");
  const uint64_t e2e_sum = ReportNumber(report, "e2e_sum_ns");
  ASSERT_GT(e2e_sum, 0u);
  const double coverage = double(phase_sum) / double(e2e_sum);
  EXPECT_GE(coverage, 0.95);
  EXPECT_LE(coverage, 1.05);

  // The dominant phase really is the argmax of the per-phase sums.
  const std::string phase_needle = "\"" + dominant + "\": {\"sum_ns\": ";
  const size_t phase_pos = report.find(phase_needle);
  ASSERT_NE(phase_pos, std::string::npos);
  const uint64_t dominant_sum = std::strtoull(
      report.c_str() + phase_pos + phase_needle.size(), nullptr, 10);
  EXPECT_GT(dominant_sum, 0u);
  EXPECT_GE(dominant_sum * 2, phase_sum / 3);  // sanity: a real share
}

TEST(TopGoldenTest, WindowedScreenFoldsOnlyTheTail) {
  const SeriesData series = LoadGoldenSeries();
  const std::string full = RenderScreen(series, TopOptions{});
  const std::string tail = RenderScreen(series, TopOptions{}, 3);
  EXPECT_NE(full, tail);
  EXPECT_NE(tail.find("3 ticks"), std::string::npos);
}

}  // namespace
}  // namespace oodb
