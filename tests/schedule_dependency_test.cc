#include "schedule/dependency_engine.h"

#include <gtest/gtest.h>

#include "model/extension.h"
#include "paper_types.h"

namespace oodb {
namespace {

using testing::BpTreeType;
using testing::LeafType;
using testing::PageType;

Invocation Ins(const std::string& k) {
  return Invocation("insert", {Value(k)});
}
Invocation Sea(const std::string& k) {
  return Invocation("search", {Value(k)});
}
Invocation Rd() { return Invocation("read"); }
Invocation Wr() { return Invocation("write"); }

void Stamp(TransactionSystem* ts, ActionId a) {
  ts->SetTimestamp(a, ts->NextTimestamp());
}

TEST(DependencyEngineTest, RefusesUnextendedSystem) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(LeafType(), "N");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, node, Ins("x"));
  ts.Call(a, node, Invocation("rearrange"));
  DependencyEngine engine(ts);
  Status st = engine.Compute();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DependencyEngineTest, Axiom1OrdersConflictingPrimitives) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId w1 = ts.Call(t1, page, Wr());
  ActionId w2 = ts.Call(t2, page, Wr());
  Stamp(&ts, w1);
  Stamp(&ts, w2);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  const ObjectSchedule& sch = engine.ForObject(page);
  EXPECT_TRUE(sch.action_deps.HasEdge(w1.value, w2.value));
  EXPECT_FALSE(sch.action_deps.HasEdge(w2.value, w1.value));
  EXPECT_EQ(engine.stats().primitive_conflicts, 1u);
}

TEST(DependencyEngineTest, CommutingPrimitivesUnordered) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId r1 = ts.Call(t1, page, Rd());
  ActionId r2 = ts.Call(t2, page, Rd());
  Stamp(&ts, r1);
  Stamp(&ts, r2);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  EXPECT_EQ(engine.ForObject(page).action_deps.EdgeCount(), 0u);
}

TEST(DependencyEngineTest, UnexecutedPrimitivesContributeNothing) {
  TransactionSystem ts;
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ts.Call(t1, page, Wr());  // never stamped
  ActionId w2 = ts.Call(t2, page, Wr());
  Stamp(&ts, w2);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  EXPECT_EQ(engine.ForObject(page).action_deps.EdgeCount(), 0u);
}

// Builds the paper's T1/T2 scenario (Example 1, commuting case): two
// top-level transactions insert different keys through the same leaf,
// touching the same page. Returns the page dependency direction.
struct CommutingScenario {
  TransactionSystem ts;
  ObjectId tree, leaf, page;
  ActionId top1, top2, tree1, tree2, leaf1, leaf2;
};

void BuildCommutingScenario(CommutingScenario* s, bool interleaved) {
  s->tree = s->ts.AddObject(BpTreeType(), "BpTree");
  s->leaf = s->ts.AddObject(LeafType(), "Leaf11");
  s->page = s->ts.AddObject(PageType(), "Page4712");
  s->top1 = s->ts.BeginTopLevel("T1");
  s->top2 = s->ts.BeginTopLevel("T2");
  s->tree1 = s->ts.Call(s->top1, s->tree, Ins("DBS"));
  s->tree2 = s->ts.Call(s->top2, s->tree, Ins("DBMS"));
  s->leaf1 = s->ts.Call(s->tree1, s->leaf, Ins("DBS"));
  s->leaf2 = s->ts.Call(s->tree2, s->leaf, Ins("DBMS"));
  ActionId r1 = s->ts.Call(s->leaf1, s->page, Rd());
  ActionId w1 = s->ts.Call(s->leaf1, s->page, Wr());
  ActionId r2 = s->ts.Call(s->leaf2, s->page, Rd());
  ActionId w2 = s->ts.Call(s->leaf2, s->page, Wr());
  if (interleaved) {
    // T1 reads, T2 reads, T1 writes, T2 writes: page-level conflicts in
    // both directions between the two leaf inserts.
    Stamp(&s->ts, r1);
    Stamp(&s->ts, r2);
    Stamp(&s->ts, w1);
    Stamp(&s->ts, w2);
  } else {
    Stamp(&s->ts, r1);
    Stamp(&s->ts, w1);
    Stamp(&s->ts, r2);
    Stamp(&s->ts, w2);
  }
}

TEST(DependencyEngineTest, InheritanceStopsAtCommutingCallers) {
  // Example 1: the page dependency is inherited to the leaf actions, but
  // they commute (different keys), so nothing reaches BpTree or the
  // top-level transactions: "more concurrency is possible".
  CommutingScenario s;
  BuildCommutingScenario(&s, /*interleaved=*/false);
  DependencyEngine engine(s.ts);
  ASSERT_TRUE(engine.Compute().ok());

  // Page level: w1 -> r2, w1 -> w2, r1 -> w2 (read/read commutes).
  const ObjectSchedule& page = engine.ForObject(s.page);
  EXPECT_EQ(page.action_deps.EdgeCount(), 3u);
  // Transaction dependency at the page: leaf1.insert -> leaf2.insert.
  EXPECT_TRUE(page.txn_deps.HasEdge(s.leaf1.value, s.leaf2.value));
  EXPECT_FALSE(page.txn_deps.HasEdge(s.leaf2.value, s.leaf1.value));

  // The inherited dependency appears as an action dependency at Leaf11.
  const ObjectSchedule& leaf = engine.ForObject(s.leaf);
  EXPECT_TRUE(leaf.action_deps.HasEdge(s.leaf1.value, s.leaf2.value));
  // But the leaf actions commute, so no transaction dependency at the
  // leaf, and nothing at the tree or top level.
  EXPECT_EQ(leaf.txn_deps.EdgeCount(), 0u);
  EXPECT_EQ(engine.ForObject(s.tree).action_deps.EdgeCount(), 0u);
  EXPECT_EQ(engine.TopLevelOrder().EdgeCount(), 0u);
  EXPECT_GE(engine.stats().stopped_inheritance, 1u);
}

TEST(DependencyEngineTest, ConflictingCallersInheritToTopLevel) {
  // Example 1, T3/T4 case: insert(DBS) and search(DBS) conflict at every
  // level, so the dependency reaches the top-level transactions.
  TransactionSystem ts;
  ObjectId tree = ts.AddObject(BpTreeType(), "BpTree");
  ObjectId leaf = ts.AddObject(LeafType(), "Leaf11");
  ObjectId page = ts.AddObject(PageType(), "Page4712");
  ActionId t3 = ts.BeginTopLevel("T3");
  ActionId t4 = ts.BeginTopLevel("T4");
  ActionId tr3 = ts.Call(t3, tree, Ins("DBS"));
  ActionId tr4 = ts.Call(t4, tree, Sea("DBS"));
  ActionId lf3 = ts.Call(tr3, leaf, Ins("DBS"));
  ActionId lf4 = ts.Call(tr4, leaf, Sea("DBS"));
  ActionId w3 = ts.Call(lf3, page, Wr());
  ActionId r4 = ts.Call(lf4, page, Rd());
  Stamp(&ts, w3);
  Stamp(&ts, r4);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  EXPECT_TRUE(
      engine.ForObject(page).txn_deps.HasEdge(lf3.value, lf4.value));
  EXPECT_TRUE(
      engine.ForObject(leaf).txn_deps.HasEdge(tr3.value, tr4.value));
  EXPECT_TRUE(
      engine.ForObject(tree).txn_deps.HasEdge(t3.value, t4.value));
  EXPECT_TRUE(engine.TopLevelOrder().HasEdge(t3.value, t4.value));
}

TEST(DependencyEngineTest, ContradictingActionDependenciesDetected) {
  // Interleaved page accesses give page-level dependencies in both
  // directions between the two leaf inserts (r1->w2 and r2->w1 etc.),
  // which surface as a cycle in the leaf's action dependencies — the
  // schedule "accessed an inconsistent state" (Def 13 ii).
  CommutingScenario s;
  BuildCommutingScenario(&s, /*interleaved=*/true);
  DependencyEngine engine(s.ts);
  ASSERT_TRUE(engine.Compute().ok());
  const ObjectSchedule& page = engine.ForObject(s.page);
  EXPECT_TRUE(page.txn_deps.HasEdge(s.leaf1.value, s.leaf2.value));
  EXPECT_TRUE(page.txn_deps.HasEdge(s.leaf2.value, s.leaf1.value));
  const ObjectSchedule& leaf = engine.ForObject(s.leaf);
  EXPECT_TRUE(leaf.action_deps.HasCycle());
  EXPECT_FALSE(leaf.IsOoSerializable());
  // The leaf actions still commute, so the contradiction does not leak
  // upward as transaction dependencies.
  EXPECT_EQ(leaf.txn_deps.EdgeCount(), 0u);
}

TEST(DependencyEngineTest, AddedDependenciesRecordedAtBothObjects) {
  // Two callers living on *different* objects conflict below: the
  // transaction dependency is recorded redundantly at both callers'
  // objects (Def 15).
  TransactionSystem ts;
  ObjectId leafA = ts.AddObject(LeafType(), "LeafA");
  ObjectId leafB = ts.AddObject(LeafType(), "LeafB");
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId a = ts.Call(t1, leafA, Ins("x"));
  ActionId b = ts.Call(t2, leafB, Ins("y"));
  ActionId wa = ts.Call(a, page, Wr());
  ActionId wb = ts.Call(b, page, Wr());
  Stamp(&ts, wa);
  Stamp(&ts, wb);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  EXPECT_TRUE(engine.ForObject(page).txn_deps.HasEdge(a.value, b.value));
  EXPECT_TRUE(engine.ForObject(leafA).added_deps.HasEdge(a.value, b.value));
  EXPECT_TRUE(engine.ForObject(leafB).added_deps.HasEdge(a.value, b.value));
  EXPECT_EQ(engine.stats().added_deps, 2u);
}

TEST(DependencyEngineTest, SerialExecutionHasConsistentTopLevelOrder) {
  // Three transactions executed serially: top-level order is acyclic and
  // matches execution order where conflicts exist.
  TransactionSystem ts;
  ObjectId tree = ts.AddObject(BpTreeType(), "T");
  ObjectId leaf = ts.AddObject(LeafType(), "L");
  ObjectId page = ts.AddObject(PageType(), "P");
  std::vector<ActionId> tops;
  for (int i = 0; i < 3; ++i) {
    ActionId t = ts.BeginTopLevel("T" + std::to_string(i + 1));
    tops.push_back(t);
    ActionId tr = ts.Call(t, tree, Ins("k"));  // same key: conflicts
    ActionId lf = ts.Call(tr, leaf, Ins("k"));
    ActionId w = ts.Call(lf, page, Wr());
    Stamp(&ts, w);
  }
  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  const Digraph& order = engine.TopLevelOrder();
  EXPECT_FALSE(order.HasCycle());
  EXPECT_TRUE(order.HasEdge(tops[0].value, tops[1].value));
  EXPECT_TRUE(order.HasEdge(tops[1].value, tops[2].value));
  EXPECT_TRUE(order.HasEdge(tops[0].value, tops[2].value));
}

TEST(DependencyEngineTest, SameTransactionConflictsDoNotCreateTxnDeps) {
  // Two sequential writes by one transaction conflict at the page, but
  // both callers belong to the same process: no transaction dependency.
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "L");
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Ins("x"));
  ActionId b = ts.Call(t1, leaf, Ins("y"));
  ActionId wa = ts.Call(a, page, Wr());
  ActionId wb = ts.Call(b, page, Wr());
  Stamp(&ts, wa);
  Stamp(&ts, wb);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  // Same process: the page writes commute by the Def 9 process rule.
  EXPECT_EQ(engine.ForObject(page).action_deps.EdgeCount(), 0u);
  EXPECT_EQ(engine.ForObject(page).txn_deps.EdgeCount(), 0u);
}

TEST(DependencyEngineTest, ParallelProcessesOfOneTransactionConflict) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(LeafType(), "L");
  ObjectId page = ts.AddObject(PageType(), "P");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(t1, leaf, Ins("x"), false);
  ActionId b = ts.Call(t1, leaf, Ins("y"), false);
  ts.SetProcess(b, 1);
  ActionId wa = ts.Call(a, page, Wr());
  ActionId wb = ts.Call(b, page, Wr());
  Stamp(&ts, wa);
  Stamp(&ts, wb);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  const ObjectSchedule& page_sch = engine.ForObject(page);
  EXPECT_TRUE(page_sch.action_deps.HasEdge(wa.value, wb.value));
  EXPECT_TRUE(page_sch.txn_deps.HasEdge(a.value, b.value));
  // The leaf inserts commute (different keys): stops there.
  EXPECT_EQ(engine.ForObject(leaf).txn_deps.EdgeCount(), 0u);
}

TEST(DependencyEngineTest, ExtensionIntegration) {
  // After extension, the moved action's conflicts on the virtual object
  // inherit back through the duplicates to the original object.
  TransactionSystem ts;
  ObjectId node = ts.AddObject(LeafType(), "Node6");
  ActionId t1 = ts.BeginTopLevel("T1");
  ActionId t2 = ts.BeginTopLevel("T2");
  ActionId ins1 = ts.Call(t1, node, Ins("k"));
  ActionId re = ts.Call(ins1, node, Invocation("rearrange"));
  ActionId ins2 = ts.Call(t2, node, Ins("k"));
  (void)re;
  SystemExtender::Extend(&ts);

  DependencyEngine engine(ts);
  ASSERT_TRUE(engine.Compute().ok());
  // No crash, and the conflicting same-key inserts are in ACT_Node6.
  const ObjectSchedule& sch = engine.ForObject(node);
  bool found = false;
  for (const auto& [x, y] : sch.conflict_pairs) {
    if ((x == ins1 && y == ins2) || (x == ins2 && y == ins1)) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace oodb
