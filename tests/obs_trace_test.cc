#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/trace_check.h"

namespace oodb {
namespace {

TraceSpan MakeSpan(uint64_t id, uint64_t parent, uint64_t txn,
                   uint32_t level, uint64_t start, uint64_t end,
                   const std::string& name = "Obj.method",
                   const std::string& outcome = "ok") {
  TraceSpan s;
  s.id = id;
  s.parent = parent;
  s.name = name;
  s.object = 3;
  s.txn = txn;
  s.level = level;
  s.tid = 0;
  s.start = start;
  s.end = end;
  s.outcome = outcome;
  return s;
}

TraceSpan TopSpan(uint64_t id, uint64_t start, uint64_t end) {
  TraceSpan s = MakeSpan(id, UINT64_MAX, id, 0, start, end, "T1", "commit");
  s.object = UINT64_MAX;
  return s;
}

TEST(TracerTest, GoldenClockIsLogicalAndTidZero) {
  Tracer tracer(TracerOptions{.golden = true, .tag = "t"});
  EXPECT_EQ(tracer.NowNs(), 1u);
  EXPECT_EQ(tracer.NowNs(), 2u);
  EXPECT_EQ(tracer.ThreadId(), 0u);
}

TEST(TracerTest, WallClockIsMonotonicNonGolden) {
  Tracer tracer;
  uint64_t a = tracer.NowNs();
  uint64_t b = tracer.NowNs();
  EXPECT_LE(a, b);
  EXPECT_GE(tracer.ThreadId(), 1u);
}

TEST(TracerTest, JsonLinesPassSchemaCheck) {
  Tracer tracer(TracerOptions{.golden = true, .tag = "unit"});
  tracer.RecordSpan(TopSpan(1, 1, 8));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 1, 2, 5));
  tracer.RecordSpan(MakeSpan(3, 2, 1, 2, 3, 4, "Page.insert"));
  tracer.RecordInstant("extension.split", 6, "Node6");
  std::string jsonl = tracer.ToJsonLines();
  Status st = ValidateTraceLines(jsonl);
  EXPECT_TRUE(st.ok()) << st.ToString() << "\n" << jsonl;
  // Meta first, instants before spans, ids as recorded.
  EXPECT_EQ(jsonl.rfind("{\"type\":\"meta\",\"version\":1,\"golden\":true",
                        0),
            0u);
  EXPECT_NE(jsonl.find("\"name\":\"extension.split\""), std::string::npos);
}

TEST(TracerTest, ChromeTraceShape) {
  Tracer tracer(TracerOptions{.golden = true, .tag = "unit"});
  tracer.RecordSpan(TopSpan(1, 1, 4));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 1, 2, 3));
  std::string chrome = tracer.ToChromeTrace();
  EXPECT_EQ(chrome.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(chrome.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"outcome\":\"commit\""), std::string::npos);
}

TEST(TracerTest, ExportSortsByStartThenId) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  // Recorded out of order; export must sort deterministically.
  tracer.RecordSpan(MakeSpan(3, 1, 1, 1, 5, 6));
  tracer.RecordSpan(TopSpan(1, 1, 9));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 1, 2, 4));
  std::string jsonl = tracer.ToJsonLines();
  size_t p1 = jsonl.find("\"id\":1,");
  size_t p2 = jsonl.find("\"id\":2,");
  size_t p3 = jsonl.find("\"id\":3,");
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
}

// --- checker negatives -------------------------------------------------

TEST(TraceCheckTest, RejectsEmptyAndMissingMeta) {
  EXPECT_FALSE(ValidateTraceLines("").ok());
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 1, 2));
  std::string jsonl = tracer.ToJsonLines();
  std::string no_meta = jsonl.substr(jsonl.find('\n') + 1);
  EXPECT_FALSE(ValidateTraceLines(no_meta).ok());
}

TEST(TraceCheckTest, RejectsDuplicateSpanId) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 1, 4));
  tracer.RecordSpan(TopSpan(1, 2, 3));
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsOrphanParent) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(MakeSpan(2, 99, 1, 1, 2, 3));
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsChildEscapingParentWindow) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 2, 4));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 1, 1, 3));  // starts before parent
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsLevelNotParentPlusOne) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 1, 6));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 2, 2, 3));  // level jumps 0 -> 2
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsCrossTxnParentage) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 1, 6));
  tracer.RecordSpan(MakeSpan(2, 1, 7, 1, 2, 3));  // txn 7 under txn 1
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsTopLevelWithParent) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 1, 6));
  tracer.RecordSpan(MakeSpan(2, 1, 1, 0, 2, 3));  // level 0 with parent
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

TEST(TraceCheckTest, RejectsStartAfterEnd) {
  Tracer tracer(TracerOptions{.golden = true, .tag = ""});
  tracer.RecordSpan(TopSpan(1, 5, 2));
  EXPECT_FALSE(ValidateTraceLines(tracer.ToJsonLines()).ok());
}

}  // namespace
}  // namespace oodb
