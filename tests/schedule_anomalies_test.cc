// The section 1 anomaly catalogue ("lost updates, inconsistent reads,
// and occurrences of phantoms" — plus write skew for good measure):
// every anomalous interleaving must be rejected, every repaired
// interleaving accepted, under BOTH the oo criterion and the
// conventional one (oo-serializability admits more schedules but no
// anomalies).

#include "workload/anomalies.h"

#include <gtest/gtest.h>

#include "schedule/validator.h"

namespace oodb {
namespace {

class AnomalyTest : public ::testing::TestWithParam<AnomalyKind> {};

TEST_P(AnomalyTest, BadInterleavingRejected) {
  auto ts = MakeAnomaly(GetParam(), /*bad=*/true);
  ASSERT_NE(ts, nullptr);
  ValidationReport report = Validator::Validate(ts.get());
  EXPECT_FALSE(report.oo_serializable)
      << AnomalyKindName(GetParam()) << "\n" << report.Summary();
  EXPECT_FALSE(report.diagnostics.empty());
}

TEST_P(AnomalyTest, GoodInterleavingAccepted) {
  auto ts = MakeAnomaly(GetParam(), /*bad=*/false);
  ASSERT_NE(ts, nullptr);
  ValidationReport report = Validator::Validate(ts.get());
  EXPECT_TRUE(report.oo_serializable)
      << AnomalyKindName(GetParam()) << "\n" << report.Summary();
  EXPECT_TRUE(report.conventionally_serializable);
  EXPECT_EQ(report.serialization_order.size(), 2u);
}

TEST_P(AnomalyTest, ConventionalAlsoRejectsBad) {
  // Page-level conflict serializability catches these too (it is
  // over-restrictive, not unsound); the oo gain is elsewhere (S1).
  auto ts = MakeAnomaly(GetParam(), /*bad=*/true);
  ValidationReport report = Validator::Validate(ts.get());
  EXPECT_FALSE(report.conventionally_serializable)
      << AnomalyKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AnomalyTest, ::testing::ValuesIn(AllAnomalyKinds()),
    [](const ::testing::TestParamInfo<AnomalyKind>& info) {
      std::string name = AnomalyKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AnomalyCatalogueTest, NamesAndKindsComplete) {
  auto kinds = AllAnomalyKinds();
  EXPECT_EQ(kinds.size(), 4u);
  for (AnomalyKind kind : kinds) {
    EXPECT_STRNE(AnomalyKindName(kind), "?");
  }
}

TEST(AnomalyCatalogueTest, LostUpdateCycleIsAtTheTree) {
  // The lost update manifests as a transaction-dependency cycle that
  // climbs all the way up (same key at every level).
  auto ts = MakeAnomaly(AnomalyKind::kLostUpdate, true);
  ValidationReport report = Validator::Validate(ts.get());
  bool mentions_cycle = false;
  for (const std::string& d : report.diagnostics) {
    if (d.find("cycle") != std::string::npos ||
        d.find("contradicting") != std::string::npos) {
      mentions_cycle = true;
    }
  }
  EXPECT_TRUE(mentions_cycle) << report.Summary();
}

}  // namespace
}  // namespace oodb
