// Round-trip property of the history text format: for any recorded
// execution, parse ∘ print = id — Dump(Load(Dump(ts))) == Dump(ts),
// and the reloaded system validates to the same verdict. Histories
// come from the random-history generator across seeds and both
// interleaving modes.

#include <gtest/gtest.h>

#include <string>

#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "schedule/history_io.h"
#include "schedule/validator.h"
#include "workload/random_history.h"

namespace oodb {
namespace {

const ObjectType* Resolve(const std::string& name) {
  for (const ObjectType* type :
       {BpTreeObjectType(), LeafObjectType(), PageObjectType()}) {
    if (type->name() == name) return type;
  }
  return nullptr;
}

class HistoryIoRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistoryIoRoundTrip, DumpLoadDumpIsIdentity) {
  for (bool atomic : {true, false}) {
    RandomHistoryConfig config;
    config.seed = GetParam();
    config.num_txns = 3 + GetParam() % 4;
    config.ops_per_txn = 2 + GetParam() % 3;
    config.atomic_ops = atomic;
    RandomHistory h = GenerateRandomHistory(config);

    auto dump1 = HistoryIo::Dump(*h.ts);
    ASSERT_TRUE(dump1.ok()) << dump1.status().ToString();
    auto loaded = HistoryIo::Load(*dump1, Resolve);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    auto dump2 = HistoryIo::Dump(**loaded);
    ASSERT_TRUE(dump2.ok()) << dump2.status().ToString();
    EXPECT_EQ(*dump1, *dump2) << "seed " << GetParam() << " atomic "
                              << atomic;
  }
}

TEST_P(HistoryIoRoundTrip, ReloadedSystemValidatesIdentically) {
  RandomHistoryConfig config;
  config.seed = GetParam();
  config.atomic_ops = (GetParam() % 2) == 0;
  RandomHistory h = GenerateRandomHistory(config);

  auto dump = HistoryIo::Dump(*h.ts);
  ASSERT_TRUE(dump.ok());
  auto loaded = HistoryIo::Load(*dump, Resolve);
  ASSERT_TRUE(loaded.ok());

  ValidationReport original = Validator::Validate(h.ts.get());
  ValidationReport reloaded = Validator::Validate(loaded->get());
  EXPECT_EQ(original.oo_serializable, reloaded.oo_serializable);
  EXPECT_EQ(original.conventionally_serializable,
            reloaded.conventionally_serializable);
  EXPECT_EQ(original.conform, reloaded.conform);
  EXPECT_EQ(original.diagnostics, reloaded.diagnostics);
  EXPECT_EQ(original.stats.primitive_conflicts,
            reloaded.stats.primitive_conflicts);
  EXPECT_EQ(original.stats.inherited_txn_deps,
            reloaded.stats.inherited_txn_deps);
  EXPECT_EQ(original.stats.added_deps, reloaded.stats.added_deps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistoryIoRoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace oodb
