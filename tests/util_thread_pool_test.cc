#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace oodb {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      int now = running.fetch_add(1) + 1;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      running.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace oodb
