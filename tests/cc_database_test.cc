#include "cc/database.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "containers/directory.h"
#include "containers/escrow.h"
#include "schedule/validator.h"

namespace oodb {
namespace {

TEST(DatabaseTest, SchedulerKindNames) {
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kOpenNested), "open-nested");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kFlat2PL), "flat-2pl");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kObjectExclusive),
               "object-exclusive");
  EXPECT_STREQ(SchedulerKindName(SchedulerKind::kNone), "none");
}

TEST(DatabaseTest, CommitsSimpleTransaction) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(dir, Invocation("insert", {Value("k"), Value("v")}));
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(db.counters().committed.load(), 1u);
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.at("k"), "v");
  EXPECT_EQ(db.locks().LockCount(), 0u);  // everything unwound
}

TEST(DatabaseTest, ResultValuePropagates) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Value out;
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("insert", {Value("k"), Value("v")})));
    return txn.Call(dir, Invocation("lookup", {Value("k")}), &out);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(out.AsString(), "v");
}

TEST(DatabaseTest, UnknownObjectAndMethodFail) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Status st1 = db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(ObjectId(999), Invocation("lookup", {Value("k")}));
  });
  EXPECT_TRUE(st1.IsNotFound());
  Status st2 = db.RunTransaction("T2", [&](MethodContext& txn) {
    return txn.Call(dir, Invocation("frobnicate"));
  });
  EXPECT_EQ(st2.code(), StatusCode::kUnsupported);
  EXPECT_EQ(db.counters().aborted.load(), 2u);
}

TEST(DatabaseTest, AbortCompensatesCompletedActions) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  // Seed.
  ASSERT_TRUE(db.RunTransaction("Seed", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("insert", {Value("a"), Value("1")}));
                }).ok());
  // A transaction that mutates twice then aborts voluntarily.
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("update", {Value("a"), Value("2")})));
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("insert", {Value("b"), Value("3")})));
    return Status::Aborted("changed my mind");
  });
  EXPECT_TRUE(st.IsAborted());
  // Both effects undone, in reverse order.
  auto* state = db.StateOf<DirectoryState>(dir);
  EXPECT_EQ(state->entries.at("a"), "1");
  EXPECT_EQ(state->entries.count("b"), 0u);
  EXPECT_EQ(db.locks().LockCount(), 0u);
}

TEST(DatabaseTest, FailedActionCleansItsOwnChildren) {
  // update of an absent key fails inside the transaction; the earlier
  // insert in the same transaction survives if the body tolerates the
  // error, and is compensated if the body propagates it.
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("insert", {Value("x"), Value("1")})));
    Status bad =
        txn.Call(dir, Invocation("update", {Value("nope"), Value("2")}));
    EXPECT_TRUE(bad.IsNotFound());
    return Status::OK();  // tolerate
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(db.StateOf<DirectoryState>(dir)->entries.at("x"), "1");
}

TEST(DatabaseTest, AbortedHistoryStillValidates) {
  // Aborted-and-compensated transactions leave a history that is still
  // oo-serializable: compensation makes the abort a semantic no-op.
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("Seed", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("insert", {Value("a"), Value("1")}));
                }).ok());
  (void)db.RunTransaction("T1", [&](MethodContext& txn) {
    OODB_RETURN_IF_ERROR(
        txn.Call(dir, Invocation("update", {Value("a"), Value("9")})));
    return Status::Aborted("rollback");
  });
  ASSERT_TRUE(db.RunTransaction("T2", [&](MethodContext& txn) {
                  return txn.Call(
                      dir, Invocation("update", {Value("a"), Value("2")}));
                }).ok());
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST(DatabaseTest, EscrowWithdrawInsufficientAborts) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 100);
  Status st = db.RunTransaction("T1", [&](MethodContext& txn) {
    return txn.Call(acct, Invocation("withdraw", {Value(200)}));
  });
  EXPECT_TRUE(st.IsConflict());
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance, 100);
}

TEST(DatabaseTest, ConcurrentCommutingTransactionsAllCommit) {
  Database db;
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 0);
  constexpr int kThreads = 8;
  constexpr int kDepositsEach = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, acct] {
      for (int i = 0; i < kDepositsEach; ++i) {
        Status st = db.RunTransaction("D", [&](MethodContext& txn) {
          return txn.Call(acct, Invocation("deposit", {Value(1)}));
        });
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance,
            kThreads * kDepositsEach);
  EXPECT_EQ(db.counters().committed.load(),
            uint64_t{kThreads} * kDepositsEach);
  EXPECT_EQ(db.counters().deadlocks.load(), 0u);
}

TEST(DatabaseTest, ObjectExclusiveSerializesEverything) {
  DatabaseOptions opts;
  opts.scheduler = SchedulerKind::kObjectExclusive;
  Database db(opts);
  RegisterAccountMethods(&db, EscrowAccountType());
  ObjectId acct = CreateAccount(&db, EscrowAccountType(), "A", 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, acct] {
      for (int i = 0; i < 20; ++i) {
        (void)db.RunTransaction("D", [&](MethodContext& txn) {
          return txn.Call(acct, Invocation("deposit", {Value(1)}));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  // All committed (no cycles possible on one object) and correct.
  EXPECT_EQ(db.StateOf<AccountState>(acct)->balance, 80);
}

TEST(DatabaseTest, HistoryOfCommittedRunValidates) {
  Database db;
  RegisterDirectoryMethods(&db);
  ObjectId dir = CreateDirectory(&db, "D");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&db, dir, t] {
      for (int i = 0; i < 25; ++i) {
        (void)db.RunTransaction("T", [&](MethodContext& txn) {
          std::string key = "k" + std::to_string((t * 25 + i) % 10);
          return txn.Call(dir,
                          Invocation("insert", {Value(key), Value("v")}));
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  ValidationReport report = Validator::Validate(&db.ts());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
  EXPECT_TRUE(report.conform);
}

TEST(DatabaseTest, RetryCounterTracksDeadlockRetries) {
  // Force deadlocks: two directories, two transactions locking them in
  // opposite order with same-key conflicts.
  DatabaseOptions opts;
  opts.lock_options.wait_timeout = std::chrono::milliseconds(500);
  Database db(opts);
  RegisterDirectoryMethods(&db);
  ObjectId d1 = CreateDirectory(&db, "D1");
  ObjectId d2 = CreateDirectory(&db, "D2");
  std::atomic<int> failures{0};
  auto txn = [&](ObjectId first, ObjectId second) {
    return [&, first, second](MethodContext& t) -> Status {
      OODB_RETURN_IF_ERROR(
          t.Call(first, Invocation("insert", {Value("k"), Value("v")})));
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return t.Call(second, Invocation("insert", {Value("k"), Value("v")}));
    };
  };
  std::thread a([&] {
    for (int i = 0; i < 10; ++i) {
      if (!db.RunTransaction("A", txn(d1, d2)).ok()) failures.fetch_add(1);
    }
  });
  std::thread b([&] {
    for (int i = 0; i < 10; ++i) {
      if (!db.RunTransaction("B", txn(d2, d1)).ok()) failures.fetch_add(1);
    }
  });
  a.join();
  b.join();
  // All eventually commit thanks to retries (or a few exhaust retries —
  // but state must stay consistent and locks must unwind).
  EXPECT_EQ(db.locks().LockCount(), 0u);
  EXPECT_EQ(db.counters().committed.load() + failures.load(), 20u);
}

TEST(RunCountersTest, ResetZeroes) {
  RunCounters c;
  c.committed = 5;
  c.aborted = 3;
  c.deadlocks = 1;
  c.conflicts = 10;
  c.operations = 100;
  c.retries = 2;
  c.Reset();
  EXPECT_EQ(c.committed.load(), 0u);
  EXPECT_EQ(c.aborted.load(), 0u);
  EXPECT_EQ(c.deadlocks.load(), 0u);
  EXPECT_EQ(c.conflicts.load(), 0u);
  EXPECT_EQ(c.operations.load(), 0u);
  EXPECT_EQ(c.retries.load(), 0u);
}

TEST(RunCountersTest, PublishToSetsRunGauges) {
  RunCounters c;
  c.committed = 7;
  c.operations = 41;
  MetricsRegistry registry;
  c.PublishTo(&registry);
  EXPECT_EQ(registry.GetGauge("run.committed")->Value(), 7);
  EXPECT_EQ(registry.GetGauge("run.operations")->Value(), 41);
  EXPECT_EQ(registry.GetGauge("run.aborted")->Value(), 0);
  c.PublishTo(nullptr);  // no-op, must not crash
}

TEST(DatabaseTest, AttachObservabilityMirrorsCounters) {
  MetricsRegistry registry;
  Tracer tracer;
  Database db;
  db.AttachObservability(&registry, &tracer);
  RegisterDirectoryMethods(&db);
  ObjectId d = CreateDirectory(&db, "D");
  ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                  return txn.Call(
                      d, Invocation("insert", {Value("k"), Value("v")}));
                }).ok());
  EXPECT_EQ(registry.GetCounter("db.txn.committed")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("db.lock.acquires")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("db.call.operations")->Value(), 1u);
  // One span per action plus the top-level transaction span.
  EXPECT_GE(tracer.SpanCount(), 2u);
  // Detach: traffic stops publishing.
  db.AttachObservability(nullptr, nullptr);
  uint64_t committed = registry.GetCounter("db.txn.committed")->Value();
  ASSERT_TRUE(db.RunTransaction("T2", [&](MethodContext& txn) {
                  return txn.Call(
                      d, Invocation("insert", {Value("k2"), Value("v")}));
                }).ok());
  EXPECT_EQ(registry.GetCounter("db.txn.committed")->Value(), committed);
}

}  // namespace
}  // namespace oodb
