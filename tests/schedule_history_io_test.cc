#include "schedule/history_io.h"

#include <gtest/gtest.h>

#include "apps/encyclopedia.h"
#include "containers/bptree.h"
#include "containers/page_ops.h"
#include "model/extension.h"
#include "schedule/validator.h"
#include "paper_types.h"

namespace oodb {
namespace {

const ObjectType* TestResolver(const std::string& name) {
  if (name == "Page") return testing::PageType();
  if (name == "Leaf") return testing::LeafType();
  if (name == "BpTree") return testing::BpTreeType();
  return nullptr;
}

TransactionSystem* BuildSample(std::unique_ptr<TransactionSystem>* out) {
  *out = std::make_unique<TransactionSystem>();
  TransactionSystem& ts = **out;
  ObjectId tree = ts.AddObject(testing::BpTreeType(), "Tree");
  ObjectId leaf = ts.AddObject(testing::LeafType(), "Leaf 1");  // space!
  ObjectId page = ts.AddObject(testing::PageType(), "Page");
  for (int t = 0; t < 2; ++t) {
    ActionId top = ts.BeginTopLevel("T" + std::to_string(t + 1));
    Invocation ins("insert", {Value("k" + std::to_string(t)), Value(42)});
    ActionId a = ts.Call(top, tree, ins);
    ActionId l = ts.Call(a, leaf, ins);
    ActionId w = ts.Call(l, page, Invocation("write"));
    ts.SetTimestamp(w, ts.NextTimestamp());
    ts.MarkCompleted(w);
    ts.MarkCompleted(l);
    ts.MarkCompleted(a);
    ts.MarkCompleted(top);
  }
  return out->get();
}

TEST(HistoryIoTest, RoundTripPreservesEverything) {
  std::unique_ptr<TransactionSystem> original;
  BuildSample(&original);
  Result<std::string> dump = HistoryIo::Dump(*original);
  ASSERT_TRUE(dump.ok()) << dump.status();

  auto loaded = HistoryIo::Load(*dump, TestResolver);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  TransactionSystem& ts = **loaded;

  ASSERT_EQ(ts.object_count(), original->object_count());
  ASSERT_EQ(ts.action_count(), original->action_count());
  for (uint64_t i = 1; i < ts.object_count(); ++i) {
    EXPECT_EQ(ts.object(ObjectId(i)).name,
              original->object(ObjectId(i)).name);
    EXPECT_EQ(ts.object(ObjectId(i)).type,
              original->object(ObjectId(i)).type);
  }
  for (uint64_t i = 0; i < ts.action_count(); ++i) {
    const ActionRecord& a = ts.action(ActionId(i));
    const ActionRecord& b = original->action(ActionId(i));
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.parent, b.parent);
    EXPECT_EQ(a.invocation, b.invocation);
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.process, b.process);
    EXPECT_EQ(a.child_precedence.size(), b.child_precedence.size());
  }
}

TEST(HistoryIoTest, LoadedHistoryValidatesIdentically) {
  std::unique_ptr<TransactionSystem> original;
  BuildSample(&original);
  Result<std::string> dump = HistoryIo::Dump(*original);
  ASSERT_TRUE(dump.ok());
  auto loaded = HistoryIo::Load(*dump, TestResolver);
  ASSERT_TRUE(loaded.ok());

  ValidationReport a = Validator::Validate(original.get());
  ValidationReport b = Validator::Validate(loaded->get());
  EXPECT_EQ(a.oo_serializable, b.oo_serializable);
  EXPECT_EQ(a.conventionally_serializable, b.conventionally_serializable);
  EXPECT_EQ(a.stats.primitive_conflicts, b.stats.primitive_conflicts);
  EXPECT_EQ(a.stats.inherited_txn_deps, b.stats.inherited_txn_deps);
}

TEST(HistoryIoTest, RuntimeHistoryRoundTrips) {
  // Dump a real execution (the runtime's container types resolve by
  // their canonical names).
  Database db;
  RegisterPageMethods(&db);
  BpTree::RegisterMethods(&db);
  ObjectId tree = BpTree::Create(&db, "T", 4, 4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.RunTransaction("ins", [&](MethodContext& txn) {
                    return txn.Call(tree, BpTree::Insert(
                                              "k" + std::to_string(i), "v"));
                  }).ok());
  }
  Result<std::string> dump = HistoryIo::Dump(db.ts());
  ASSERT_TRUE(dump.ok()) << dump.status();
  auto loaded = HistoryIo::Load(*dump, [](const std::string& name) {
    if (name == "Page") return PageObjectType();
    if (name == "Leaf") return LeafObjectType();
    if (name == "Node") return NodeObjectType();
    if (name == "BpTree") return BpTreeObjectType();
    return static_cast<const ObjectType*>(nullptr);
  });
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ValidationReport report = Validator::Validate(loaded->get());
  EXPECT_TRUE(report.oo_serializable) << report.Summary();
}

TEST(HistoryIoTest, SpecialCharactersSurvive) {
  TransactionSystem ts;
  ObjectId leaf = ts.AddObject(testing::LeafType(), "name with spaces");
  ActionId top = ts.BeginTopLevel("T 1%");
  ts.Call(top, leaf,
          Invocation("insert", {Value("key with\nnewline"), Value("")}));
  Result<std::string> dump = HistoryIo::Dump(ts);
  ASSERT_TRUE(dump.ok());
  auto loaded = HistoryIo::Load(*dump, TestResolver);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const ActionRecord& a = (*loaded)->action(ActionId(1));
  EXPECT_EQ(a.invocation.params[0].AsString(), "key with\nnewline");
  EXPECT_EQ(a.invocation.params[1].AsString(), "");
  EXPECT_EQ((*loaded)->object(leaf).name, "name with spaces");
}

TEST(HistoryIoTest, ExtendedSystemRefused) {
  TransactionSystem ts;
  ObjectId node = ts.AddObject(testing::LeafType(), "N");
  ActionId top = ts.BeginTopLevel("T1");
  ActionId a = ts.Call(top, node, Invocation("insert", {Value("k")}));
  ts.Call(a, node, Invocation("rearrange"));
  SystemExtender::Extend(&ts);
  Result<std::string> dump = HistoryIo::Dump(ts);
  EXPECT_FALSE(dump.ok());
  EXPECT_EQ(dump.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistoryIoTest, MalformedInputsRejected) {
  auto expect_bad = [](const std::string& text, const char* what) {
    auto r = HistoryIo::Load(text, TestResolver);
    EXPECT_FALSE(r.ok()) << what;
  };
  expect_bad("", "empty");
  expect_bad("not a header\n", "bad header");
  expect_bad("oodb-history v1\nobject x y\n", "bad object line");
  expect_bad("oodb-history v1\nobject 1 Unknown name\n", "unknown type");
  expect_bad("oodb-history v1\nfrobnicate 1 2\n", "unknown kind");
  expect_bad("oodb-history v1\naction 0 0 7 0 0 0 m 0 L\n",
             "parent before definition");
}

}  // namespace
}  // namespace oodb
