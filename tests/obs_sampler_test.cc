// The flight recorder's core contract (obs/sampler.h): every delta is
// attributed exactly once. After quiescence, the sum of ring deltas —
// counters, histogram counts, sums, and per-bucket occupancy — equals
// the final registry snapshot exactly, even when the samples were taken
// concurrently with the mutating threads. Run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/top.h"

namespace oodb {
namespace {

/// Sums every counter delta in `samples` by name.
std::map<std::string, uint64_t> SumCounters(
    const std::vector<Sample>& samples) {
  std::map<std::string, uint64_t> sums;
  for (const Sample& s : samples) {
    for (const auto& [name, delta] : s.counters) sums[name] += delta;
  }
  return sums;
}

struct HistSums {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::map<uint32_t, uint64_t> buckets;
};

std::map<std::string, HistSums> SumHists(const std::vector<Sample>& samples) {
  std::map<std::string, HistSums> sums;
  for (const Sample& s : samples) {
    for (const auto& h : s.hists) {
      HistSums& slot = sums[h.name];
      slot.count += h.count;
      slot.sum += h.sum;
      for (const auto& [bucket, delta] : h.buckets) {
        slot.buckets[bucket] += delta;
      }
    }
  }
  return sums;
}

TEST(SamplerTest, DeltaSumEqualsFinalSnapshotUnderConcurrentMutation) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.logical_clock = true;
  MetricsSampler sampler(&registry, options);

  constexpr size_t kThreads = 4;
  constexpr size_t kIters = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      Counter* mine = registry.GetCounter("c.thread" + std::to_string(t));
      Counter* shared = registry.GetCounter("c.shared");
      HistogramMetric* hist = registry.GetHistogram("h.values");
      Gauge* gauge = registry.GetGauge("g.level");
      for (size_t i = 0; i < kIters; ++i) {
        mine->Increment();
        shared->Increment(2);
        hist->Observe((t * kIters + i) % 100'000);
        gauge->Set(int64_t(i));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Sample concurrently with the mutators — the property must hold no
  // matter where the tick boundaries land.
  for (int tick = 0; tick < 50; ++tick) {
    sampler.SampleNow();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (auto& w : workers) w.join();
  sampler.SampleNow();  // quiescent: collects every remaining delta

  const std::vector<Sample> series = sampler.Series();
  const auto counter_sums = SumCounters(series);
  EXPECT_EQ(counter_sums.at("c.shared"), 2 * kThreads * kIters);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(counter_sums.at("c.thread" + std::to_string(t)), kIters);
  }

  const auto hist_sums = SumHists(series);
  const HistogramSnapshot final = registry.GetHistogram("h.values")->Snapshot();
  const HistSums& h = hist_sums.at("h.values");
  EXPECT_EQ(h.count, final.count());
  EXPECT_EQ(h.count, kThreads * kIters);
  EXPECT_EQ(h.sum, final.sum());
  // Bucket-level exactness: the sparse deltas rebuild the full final
  // occupancy vector.
  for (size_t b = 0; b < final.buckets().size(); ++b) {
    auto it = h.buckets.find(uint32_t(b));
    const uint64_t summed = it == h.buckets.end() ? 0 : it->second;
    EXPECT_EQ(summed, final.buckets()[b]) << "bucket " << b;
  }

  // The last sample's gauge value is the final registry value.
  ASSERT_FALSE(series.empty());
  int64_t last_gauge = -1;
  for (const auto& [name, value] : series.back().gauges) {
    if (name == "g.level") last_gauge = value;
  }
  EXPECT_EQ(last_gauge, registry.GetGauge("g.level")->Value());

  EXPECT_EQ(sampler.Stats().nonmonotone_counters, 0u);
  EXPECT_EQ(sampler.Stats().dropped_samples, 0u);
}

TEST(SamplerTest, BackgroundThreadPreservesDeltaSum) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.interval = std::chrono::milliseconds(2);
  MetricsSampler sampler(&registry, options);
  sampler.Start();

  Counter* c = registry.GetCounter("c.bg");
  for (size_t i = 0; i < 50'000; ++i) {
    c->Increment();
    if (i % 10'000 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  sampler.Stop();  // takes the final sample

  EXPECT_EQ(SumCounters(sampler.Series()).at("c.bg"), 50'000u);
  EXPECT_GT(sampler.Stats().ticks, 1u);
}

TEST(SamplerTest, MetricsRegisteredMidFlightGetBaselineZero) {
  MetricsRegistry registry;
  MetricsSampler sampler(&registry, SamplerOptions{});

  registry.GetCounter("c.early")->Increment(5);
  sampler.SampleNow();
  registry.GetCounter("c.early")->Increment(1);
  registry.GetCounter("c.late")->Increment(7);  // registered after tick 1
  sampler.SampleNow();

  const auto sums = SumCounters(sampler.Series());
  EXPECT_EQ(sums.at("c.early"), 6u);
  EXPECT_EQ(sums.at("c.late"), 7u);
}

TEST(SamplerTest, LogicalClockStampsTickIndex) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.logical_clock = true;
  MetricsSampler sampler(&registry, options);
  sampler.SampleNow();
  sampler.SampleNow();
  const std::vector<Sample> series = sampler.Series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].tick, 1u);
  EXPECT_EQ(series[0].ts_ns, 1u);
  EXPECT_EQ(series[1].ts_ns, 2u);
}

TEST(SamplerTest, RingCapacityEvictsOldestAndCounts) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.ring_capacity = 3;
  MetricsSampler sampler(&registry, options);
  for (int i = 0; i < 5; ++i) sampler.SampleNow();
  const std::vector<Sample> series = sampler.Series();
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.front().tick, 3u);  // ticks 1 and 2 fell off
  EXPECT_EQ(series.back().tick, 5u);
  EXPECT_EQ(sampler.Stats().dropped_samples, 2u);
}

TEST(SamplerTest, JsonLinesRoundTripThroughParseSeries) {
  MetricsRegistry registry;
  SamplerOptions options;
  options.logical_clock = true;
  options.tag = "round-trip";
  MetricsSampler sampler(&registry, options);

  registry.GetCounter("c.a")->Increment(3);
  registry.GetHistogram("h.x")->Observe(1000);
  registry.GetGauge("g.y")->Set(-4);
  sampler.SampleNow();
  registry.GetCounter("c.a")->Increment(2);
  registry.GetHistogram("h.x")->Observe(2000);
  sampler.SampleNow();

  Result<SeriesData> parsed = ParseSeries(sampler.ToJsonLines());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, 1u);
  EXPECT_TRUE(parsed->logical);
  EXPECT_EQ(parsed->tag, "round-trip");
  ASSERT_EQ(parsed->samples.size(), 2u);

  uint64_t counter_total = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  for (const SeriesSample& s : parsed->samples) {
    for (const auto& [name, delta] : s.counters) {
      if (name == "c.a") counter_total += delta;
    }
    for (const auto& h : s.hists) {
      if (h.name == "h.x") {
        hist_count += h.count;
        hist_sum += h.sum;
      }
    }
  }
  EXPECT_EQ(counter_total, 5u);
  EXPECT_EQ(hist_count, 2u);
  EXPECT_EQ(hist_sum, 3000u);
  int64_t gauge = 0;
  for (const auto& [name, value] : parsed->samples.back().gauges) {
    if (name == "g.y") gauge = value;
  }
  EXPECT_EQ(gauge, -4);
}

TEST(SamplerTest, ParseSeriesRejectsMalformedInput) {
  EXPECT_FALSE(ParseSeries("").ok());
  EXPECT_FALSE(ParseSeries("{\"type\":\"sample\",\"tick\":1}\n").ok());
  const std::string meta =
      "{\"type\":\"series-meta\",\"version\":1,\"interval_ms\":10,"
      "\"logical\":true,\"tag\":\"t\"}\n";
  EXPECT_TRUE(ParseSeries(meta).ok());
  EXPECT_FALSE(ParseSeries(meta + meta).ok());  // duplicate meta
  EXPECT_FALSE(ParseSeries(meta + "not json\n").ok());
  // Non-contiguous ticks: 1 then 3.
  EXPECT_FALSE(
      ParseSeries(meta + "{\"type\":\"sample\",\"tick\":1,\"ts_ns\":1,"
                         "\"dur_ns\":0,\"counters\":{},\"gauges\":{},"
                         "\"hists\":{}}\n"
                         "{\"type\":\"sample\",\"tick\":3,\"ts_ns\":3,"
                         "\"dur_ns\":0,\"counters\":{},\"gauges\":{},"
                         "\"hists\":{}}\n")
          .ok());
  // Unsupported version.
  EXPECT_FALSE(
      ParseSeries("{\"type\":\"series-meta\",\"version\":2}\n").ok());
}

TEST(SamplerTest, ProbesRunEveryTickBeforeTheFold) {
  MetricsRegistry registry;
  MetricsSampler sampler(&registry, SamplerOptions{});
  int calls = 0;
  sampler.AddProbe("test", [&registry, &calls] {
    ++calls;
    registry.GetGauge("g.probe")->Set(calls);
  });
  sampler.SampleNow();
  sampler.SampleNow();
  EXPECT_EQ(calls, 2);
  // The probe's gauge write lands in the same tick's sample.
  const std::vector<Sample> series = sampler.Series();
  int64_t first = 0;
  for (const auto& [name, value] : series.front().gauges) {
    if (name == "g.probe") first = value;
  }
  EXPECT_EQ(first, 1);
}

}  // namespace
}  // namespace oodb
