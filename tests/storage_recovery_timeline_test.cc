// Recovery timeline: the six instrumented phases must tile measured
// recovery wall time exactly (coverage 1.0 — kFinish is the residual),
// phase record counts must agree with the recovery stats, the JSON
// artifact must carry the stable schema, and the invariants must hold
// on every exit path: the clean run, the fresh (no-WAL) store, the
// crash-during-undo Aborted path, and real kill -9 sweep points.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "containers/directory.h"
#include "containers/persist.h"
#include "storage/recovery.h"
#include "workload/crash_harness.h"

namespace oodb {
namespace {

void ExpectExactCoverage(const RecoveryTimeline& t) {
  EXPECT_GT(t.total_ns, 0u);
  EXPECT_EQ(t.SumNs(), t.total_ns);
  EXPECT_DOUBLE_EQ(t.Coverage(), 1.0);
}

class RecoveryTimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = "/tmp/oodb_recovery_timeline_test_" + std::string(info->name()) +
           "_" + std::to_string(::getpid());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status OpenRecovered(StorageEngine* engine, Database* db,
                       RecoveryStats* stats = nullptr,
                       RecoveryOptions options = {}) {
    RegisterDirectoryMethods(db);
    OODB_RETURN_IF_ERROR(RegisterStandardSerdes(engine));
    OODB_RETURN_IF_ERROR(engine->Open(db));
    if (!engine->RootId("D").valid()) {
      OODB_RETURN_IF_ERROR(
          engine->AttachRoot("D", "directory", CreateDirectory(db, "D")));
    }
    OODB_RETURN_IF_ERROR(Recover(engine, db, stats, options));
    db->AttachDurability(engine);
    return Status::OK();
  }

  StorageEngineOptions Opts() const {
    StorageEngineOptions opts;
    opts.dir = dir_;
    return opts;
  }

  std::string dir_;
};

TEST_F(RecoveryTimelineTest, PhaseNamesAreStable) {
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kScan), "scan");
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kAnalysis), "analysis");
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kRedo), "redo");
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kUndo), "undo");
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kCheckpoint), "checkpoint");
  EXPECT_STREQ(RecoveryPhaseName(RecoveryPhase::kFinish), "finish");
}

TEST_F(RecoveryTimelineTest, FreshStoreStillCoversFully) {
  // First-ever open: no epoch WAL exists, recovery takes the NotFound
  // path — the timeline must still be finalized and fully covered.
  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  ExpectExactCoverage(stats.timeline);
  EXPECT_EQ(stats.timeline.phase_records[static_cast<size_t>(
                RecoveryPhase::kScan)],
            0u);
}

TEST_F(RecoveryTimelineTest, NormalRecoveryTilesWallTime) {
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    ObjectId root = engine.RootId("D");
    for (int i = 0; i < 8; ++i) {
      const std::string k = "k" + std::to_string(i);
      ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                      return txn.Call(
                          root, Invocation("insert", {Value(k), Value(k)}));
                    }).ok());
    }
  }

  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  ASSERT_TRUE(OpenRecovered(&engine, &db, &stats).ok());
  ASSERT_GT(stats.scanned_records, 0u);
  ExpectExactCoverage(stats.timeline);

  // Phase record attribution matches the recovery stats.
  const auto records = [&](RecoveryPhase p) {
    return stats.timeline.phase_records[static_cast<size_t>(p)];
  };
  EXPECT_EQ(records(RecoveryPhase::kScan), stats.scanned_records);
  EXPECT_EQ(records(RecoveryPhase::kAnalysis), stats.scanned_records);
  EXPECT_EQ(records(RecoveryPhase::kRedo), stats.redo_records);
  EXPECT_EQ(records(RecoveryPhase::kUndo), stats.undo_records);
  EXPECT_GT(stats.timeline.Ns(RecoveryPhase::kCheckpoint), 0u);

  // The JSON artifact carries the stable schema and all six phases.
  const std::string json = stats.timeline.Json();
  EXPECT_NE(json.find("\"format\": \"oodb-recovery-timeline-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"coverage\": 1.0000"), std::string::npos);
  for (size_t i = 0; i < kRecoveryPhaseCount; ++i) {
    const std::string name =
        RecoveryPhaseName(static_cast<RecoveryPhase>(i));
    EXPECT_NE(json.find("\"phase\": \"" + name + "\""), std::string::npos)
        << name;
  }

  // PublishTo exposes the per-phase gauges, and they sum to the total.
  MetricsRegistry registry;
  stats.PublishTo(&registry);
  int64_t sum = 0;
  for (size_t i = 0; i < kRecoveryPhaseCount; ++i) {
    const std::string metric =
        "recovery.phase." +
        std::string(RecoveryPhaseSuffix(static_cast<RecoveryPhase>(i))) +
        "_ns";
    sum += registry.GetGauge(metric)->Value();
  }
  EXPECT_EQ(sum, registry.GetGauge("recovery.total_ns")->Value());
  EXPECT_EQ(static_cast<uint64_t>(sum), stats.timeline.total_ns);
}

TEST_F(RecoveryTimelineTest, AbortedMidUndoStillCoversFully) {
  {
    Database db;
    StorageEngine engine(Opts());
    ASSERT_TRUE(OpenRecovered(&engine, &db).ok());
    ObjectId root = engine.RootId("D");
    ASSERT_TRUE(db.RunTransaction("T", [&](MethodContext& txn) {
                    return txn.Call(root, Invocation("insert", {Value("a"),
                                                               Value("1")}));
                  }).ok());
    // A synthetic loser: ops on the log, no commit/abort record.
    WalRecord begin;
    begin.type = WalRecordType::kBegin;
    begin.txn = 777;
    begin.txn_name = "loser";
    ASSERT_TRUE(engine.wal().Append(begin).ok());
    for (int i = 0; i < 3; ++i) {
      WalRecord op;
      op.type = WalRecordType::kOp;
      op.txn = 777;
      op.root = "D";
      op.op = Invocation(
          "insert", {Value("lost" + std::to_string(i)), Value("x")});
      op.has_comp = true;
      op.comp = Invocation("remove", {Value("lost" + std::to_string(i))});
      ASSERT_TRUE(engine.wal().Append(op).ok());
    }
    ASSERT_TRUE(engine.wal().Force().ok());
  }

  // Stop after the first CLR: recovery returns Aborted (the simulated
  // second crash) — the timeline must still be finalized.
  Database db;
  StorageEngine engine(Opts());
  RecoveryStats stats;
  RecoveryOptions options;
  options.stop_after_clrs = 1;
  const Status st = OpenRecovered(&engine, &db, &stats, options);
  ASSERT_TRUE(st.IsAborted()) << st.ToString();
  ExpectExactCoverage(stats.timeline);
  EXPECT_EQ(stats.timeline.phase_records[static_cast<size_t>(
                RecoveryPhase::kUndo)],
            1u);
}

TEST_F(RecoveryTimelineTest, CrashSweepPointsCoverFully) {
  // Real kill -9 crash points, spanning early/mid/late in the workload:
  // the acceptance criterion is coverage 1.0 at every sweep point.
  std::filesystem::create_directories(dir_);
  for (const int64_t crash_after : {5, 17, 29}) {
    SCOPED_TRACE("crash_after=" + std::to_string(crash_after));
    CrashHarnessConfig config;
    config.dir = dir_ + "/p" + std::to_string(crash_after);
    config.txns = 40;
    config.threads = 2;
    config.crash_after_appends = crash_after;
    config.post_txns = 8;
    const CrashHarnessReport report = CrashHarness::Run(config);
    ASSERT_TRUE(report.ok()) << report.failure;
    ExpectExactCoverage(report.recovery.timeline);

    // The per-point JSON embeds the timeline with full coverage.
    const std::string json = report.Json(crash_after);
    EXPECT_NE(json.find("\"timeline\": {"), std::string::npos);
    EXPECT_NE(json.find("\"coverage\": 1.0000"), std::string::npos);
  }
}

}  // namespace
}  // namespace oodb
