#include "model/commutativity.h"

#include <gtest/gtest.h>

namespace oodb {
namespace {

Invocation Ins(const std::string& key) {
  return Invocation("insert", {Value(key)});
}
Invocation Sea(const std::string& key) {
  return Invocation("search", {Value(key)});
}

TEST(NeverCommutesTest, EverythingConflicts) {
  NeverCommutes spec;
  EXPECT_FALSE(spec.Commutes(Ins("a"), Ins("b")));
  EXPECT_TRUE(spec.Conflicts(Ins("a"), Sea("a")));
}

TEST(AlwaysCommutesTest, EverythingCommutes) {
  AlwaysCommutes spec;
  EXPECT_TRUE(spec.Commutes(Ins("a"), Ins("a")));
}

TEST(ReadWriteTest, ReadersCommute) {
  ReadWriteCommutativity spec({"read", "scan"});
  EXPECT_TRUE(spec.Commutes(Invocation("read"), Invocation("read")));
  EXPECT_TRUE(spec.Commutes(Invocation("read"), Invocation("scan")));
}

TEST(ReadWriteTest, WritersConflict) {
  ReadWriteCommutativity spec({"read"});
  EXPECT_FALSE(spec.Commutes(Invocation("read"), Invocation("write")));
  EXPECT_FALSE(spec.Commutes(Invocation("write"), Invocation("write")));
}

TEST(ReadWriteTest, UnknownMethodIsWriter) {
  ReadWriteCommutativity spec({"read"});
  EXPECT_FALSE(spec.Commutes(Invocation("mystery"), Invocation("read")));
}

TEST(MatrixTest, DefaultConflicts) {
  MatrixCommutativity spec;
  EXPECT_FALSE(spec.Commutes(Invocation("a"), Invocation("b")));
}

TEST(MatrixTest, DeclaredPairsCommuteSymmetrically) {
  MatrixCommutativity spec;
  spec.SetCommutes("append", "append");
  spec.SetCommutes("append", "size");
  EXPECT_TRUE(spec.Commutes(Invocation("append"), Invocation("append")));
  EXPECT_TRUE(spec.Commutes(Invocation("append"), Invocation("size")));
  EXPECT_TRUE(spec.Commutes(Invocation("size"), Invocation("append")));
  EXPECT_FALSE(spec.Commutes(Invocation("size"), Invocation("clear")));
}

TEST(MatrixTest, ParametersIgnored) {
  MatrixCommutativity spec;
  spec.SetCommutes("insert", "insert");
  EXPECT_TRUE(spec.Commutes(Ins("same"), Ins("same")));
}

TEST(PredicateTest, DifferentParamKeyedInserts) {
  // The paper's leaf semantics: insert(DBS) and insert(DBMS) commute,
  // insert(DBS) twice conflicts.
  PredicateCommutativity spec;
  spec.SetPredicate("insert", "insert",
                    PredicateCommutativity::DifferentParam(0));
  EXPECT_TRUE(spec.Commutes(Ins("DBS"), Ins("DBMS")));
  EXPECT_FALSE(spec.Commutes(Ins("DBS"), Ins("DBS")));
}

TEST(PredicateTest, InsertVsSearchSameKeyConflicts) {
  // Example 1: Leaf11.insert(DBS) and Leaf11.search(DBS) access the same
  // key and conflict.
  PredicateCommutativity spec;
  spec.SetPredicate("insert", "search",
                    PredicateCommutativity::DifferentParam(0));
  EXPECT_FALSE(spec.Commutes(Ins("DBS"), Sea("DBS")));
  EXPECT_TRUE(spec.Commutes(Ins("DBS"), Sea("DBMS")));
  // Symmetric registration: query in the other method order.
  EXPECT_FALSE(spec.Commutes(Sea("DBS"), Ins("DBS")));
  EXPECT_TRUE(spec.Commutes(Sea("DBMS"), Ins("DBS")));
}

TEST(PredicateTest, AsymmetricPredicateSeesRegistrationOrder) {
  // A predicate that commutes iff the *first* registered method's param
  // is smaller: checks that argument order is normalized.
  PredicateCommutativity spec;
  spec.SetPredicate("a", "b", [](const Invocation& a, const Invocation& b) {
    return a.params[0].AsInt() < b.params[0].AsInt();
  });
  Invocation a1("a", {Value(1)});
  Invocation b2("b", {Value(2)});
  EXPECT_TRUE(spec.Commutes(a1, b2));
  EXPECT_TRUE(spec.Commutes(b2, a1));  // swapped call, same answer
  Invocation a3("a", {Value(3)});
  EXPECT_FALSE(spec.Commutes(a3, b2));
  EXPECT_FALSE(spec.Commutes(b2, a3));
}

TEST(PredicateTest, ExplicitCommutesAndConflicts) {
  PredicateCommutativity spec;
  spec.SetCommutes("search", "search");
  spec.SetConflicts("clear", "search");
  EXPECT_TRUE(spec.Commutes(Sea("x"), Sea("y")));
  EXPECT_FALSE(spec.Commutes(Invocation("clear"), Sea("x")));
}

TEST(PredicateTest, UnregisteredPairConflicts) {
  PredicateCommutativity spec;
  EXPECT_FALSE(spec.Commutes(Invocation("foo"), Invocation("bar")));
}

TEST(PredicateTest, MissingParamsConflict) {
  PredicateCommutativity spec;
  spec.SetPredicate("insert", "insert",
                    PredicateCommutativity::DifferentParam(0));
  EXPECT_FALSE(spec.Commutes(Invocation("insert"), Ins("x")));
}

TEST(PredicateTest, SameParamPredicate) {
  PredicateCommutativity spec;
  spec.SetPredicate("inc", "inc", PredicateCommutativity::SameParam(0));
  Invocation a("inc", {Value(1)});
  Invocation b("inc", {Value(2)});
  EXPECT_TRUE(spec.Commutes(a, a));
  EXPECT_FALSE(spec.Commutes(a, b));
}

}  // namespace
}  // namespace oodb
